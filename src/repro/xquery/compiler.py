"""Compositional XQuery-to-pipeline compiler.

Each AST node compiles to a handful of state transformers appended to one
global pipeline, exactly in the paper's style: "we translate XQuery
one-step-at-a-time, so that our XQuery translation is compositional and
general".  Virtual substream numbers glue the stages together; the shared
:class:`~repro.core.transformer.Context` allocates them.

Layout decisions (each discussed in DESIGN.md):

* predicates and where-clauses embed their condition as an inline (inert)
  sub-pipeline of the Predicate operator, so the wrapper's region state
  copies extend into the condition evaluation;
* backward axes tee the source into a clone branch expanded by ``//``;
  the clone branch stages are appended *after* the main branch so the
  incoming result's events reach the join before their clone copies;
* ``order by`` keys are teed off the tuple stream *before* the where
  filter (every tuple gets a key) and the sort runs *after* the return
  construction, which is equivalent because the key is extracted
  independently of the return clause;
* multi-way concatenation in return clauses is chained right-
  associatively so each insert-before bracket opens before the content
  that must land inside it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.transformer import Context, StateTransformer
from ..operators import (AncestorJoin, ChildStep, CompareLiteral, Concat,
                         ContainsLiteral, CountItems, DescendantStep,
                         ExistsFlag, ForTuples, InlinePipeline, LiteralText,
                         make_condition,
                         MinMaxAggregate, NumericAggregate, Predicate,
                         SCOPE_TUPLE, StreamConstruct, StringValue, Tee,
                         TextStep, TupleConstruct, TupleStrip)
from . import ast


class CompileError(ValueError):
    """Raised when a query is outside the supported subset."""


class Plan:
    """A compiled query: the stage list plus stream metadata."""

    def __init__(self, stages: List[StateTransformer], source_id: int,
                 result_id: int, ctx: Context, needs_oids: bool,
                 mutable_source: bool = False) -> None:
        self.stages = stages
        self.source_id = source_id
        self.result_id = result_id
        self.ctx = ctx
        self.needs_oids = needs_oids
        #: Whether the plan was compiled for a source that embeds updates
        #: (predicate decisions revocable, Section V pruning off).
        self.mutable_source = mutable_source
        #: Ids below this were allocated at compile time (stream numbers
        #: and operator-owned region ids); ids at or above it are allocated
        #: while events flow.  The static analyzer uses this watermark to
        #: compare its fix-map prediction with the runtime registry.
        self.first_runtime_id = ctx.ids._next

    def __repr__(self) -> str:
        return "Plan({} stages, source={}, result={})".format(
            len(self.stages), self.source_id, self.result_id)


class Compiler:
    """Compile one query AST into a :class:`Plan`.

    Args:
        ctx: shared context; a fresh one is created when omitted.
        source_id: the stream number the engine feeds the input on.
        mutable_source: when True the source may embed updates; predicate
            decisions stay revocable and backward joins keep their state
            (Section V pruning off).
        clone_source: a pre-teed copy of the source stream to feed backward
            joins from, instead of inserting a Tee at the front of this
            plan.  The prefix-sharing layer passes the shared clone stream
            here so every suffix with one backward step reads the same
            copy.  A plan may consume it at most once (the clone branch's
            DescendantStep destroys the stream), so sharing excludes
            queries with more than one backward step.
    """

    def __init__(self, ctx: Optional[Context] = None, source_id: int = 0,
                 mutable_source: bool = False,
                 clone_source: Optional[int] = None) -> None:
        self.ctx = ctx if ctx is not None else Context()
        self.ctx.ids.reserve(source_id)
        self.source_id = source_id
        self.mutable_source = mutable_source
        self.clone_source = clone_source
        self.stages: List[StateTransformer] = []
        self.needs_oids = False
        self._env: dict = {}

    def fresh(self) -> int:
        return self.ctx.fresh_id()

    def compile(self, expr: ast.Expr) -> Plan:
        result_id = self._compile(expr, per_tuple=False)
        return Plan(self.stages, self.source_id, result_id, self.ctx,
                    self.needs_oids, mutable_source=self.mutable_source)

    # -- dispatch -------------------------------------------------------------

    def _compile(self, expr: ast.Expr, per_tuple: bool) -> int:
        if isinstance(expr, ast.Source):
            return self.source_id
        if isinstance(expr, ast.Prebound):
            return expr.stream_id
        if isinstance(expr, ast.VarRef):
            return self._compile_var(expr)
        if isinstance(expr, ast.Step):
            return self._compile_step(expr, per_tuple)
        if isinstance(expr, ast.Filter):
            return self._compile_filter(expr, per_tuple)
        if isinstance(expr, ast.FLWOR):
            return self._compile_flwor(expr, per_tuple)
        if isinstance(expr, ast.ElementCtor):
            return self._compile_ctor(expr, per_tuple)
        if isinstance(expr, ast.SequenceExpr):
            return self._compile_sequence(expr, per_tuple)
        if isinstance(expr, ast.FunCall):
            return self._compile_funcall(expr, per_tuple)
        if isinstance(expr, ast.StringLit):
            return self._compile_literal(expr, per_tuple)
        if isinstance(expr, ast.Compare):
            raise CompileError(
                "comparisons are only supported inside predicates and "
                "where clauses: {!r}".format(expr))
        raise CompileError("unsupported expression {!r}".format(expr))

    # -- variables ----------------------------------------------------------------

    def _compile_var(self, expr: ast.VarRef) -> int:
        if expr.name not in self._env:
            raise CompileError("unbound variable ${}".format(expr.name))
        bound = self._env[expr.name]
        copy = self.fresh()
        self.stages.append(Tee(self.ctx, bound, copy))
        return copy

    # -- steps ---------------------------------------------------------------------

    def _compile_step(self, expr: ast.Step, per_tuple: bool) -> int:
        if expr.axis in (ast.PARENT, ast.ANCESTOR):
            return self._compile_backward(expr, per_tuple)
        base = self._compile(expr.base, per_tuple)
        out = self.fresh()
        if expr.axis == ast.CHILD:
            self.stages.append(ChildStep(self.ctx, base, out, expr.tag))
        elif expr.axis == ast.DESCENDANT:
            self.stages.append(DescendantStep(self.ctx, base, out,
                                              expr.tag))
        elif expr.axis == ast.TEXT:
            self.stages.append(TextStep(self.ctx, base, out))
        else:
            raise CompileError("unsupported axis {!r}".format(expr.axis))
        return out

    def _compile_backward(self, expr: ast.Step, per_tuple: bool) -> int:
        incoming = self._compile(expr.base, per_tuple)
        self.needs_oids = True
        if self.clone_source is not None:
            clone = self.clone_source
        else:
            clone = self.fresh()
            # Clone immediately after the source (prepended before all
            # other stages, paper Section VI-E).
            self.stages.insert(0, Tee(self.ctx, self.source_id, clone))
        # The clone branch is appended here — after every stage that
        # produces the incoming stream — so an incoming element's events
        # always reach the join before their clone copies.
        candidates = self.fresh()
        self.stages.append(
            DescendantStep(self.ctx, clone, candidates, expr.tag))
        out = self.fresh()
        self.stages.append(
            AncestorJoin(self.ctx, candidates, incoming, out,
                         direct_only=expr.axis == ast.PARENT,
                         freeze_decisions=not self.mutable_source))
        return out

    # -- predicates -------------------------------------------------------------------

    def _compile_filter(self, expr: ast.Filter, per_tuple: bool) -> int:
        base = self._compile(expr.base, per_tuple)
        out = self.fresh()
        conditions, combine = self._compile_conditions(expr.cond)
        self.stages.append(Predicate(self.ctx, base, out, conditions,
                                     combine=combine,
                                     assume_fixed=not self.mutable_source))
        return out

    def _compile_conditions(self, cond: ast.Expr):
        """One inline pipeline per conjunct/disjunct."""
        if isinstance(cond, ast.BoolExpr):
            return ([self._compile_condition(item) for item in cond.items],
                    cond.op)
        return [self._compile_condition(cond)], "and"

    def _compile_condition(self, cond: ast.Expr):
        """Build the inert inline pipeline evaluating a condition.

        The condition is a relative path, optionally wrapped in a
        comparison or contains(); it emits one flag cD per condition item
        (non-empty = true), the shape the predicate's F2 expects.
        """
        c_in = self.fresh()
        stages: List[StateTransformer] = []
        if isinstance(cond, ast.Compare):
            path_out = self._compile_condition_path(cond.left, c_in,
                                                    stages)
            sval = self.fresh()
            stages.append(StringValue(self.ctx, path_out, sval))
            c_out = self.fresh()
            stages.append(CompareLiteral(self.ctx, sval, c_out, cond.op,
                                         cond.literal))
        elif isinstance(cond, ast.FunCall) and cond.name == "contains":
            path_out = self._compile_condition_path(cond.args[0], c_in,
                                                    stages)
            sval = self.fresh()
            stages.append(StringValue(self.ctx, path_out, sval))
            c_out = self.fresh()
            stages.append(ContainsLiteral(self.ctx, sval, c_out,
                                          cond.literal or ""))
        else:
            path_out = self._compile_condition_path(cond, c_in, stages)
            c_out = self.fresh()
            stages.append(ExistsFlag(self.ctx, path_out, c_out))
        return make_condition(stages, c_in, c_out)

    def _compile_condition_path(self, expr: ast.Expr, input_id: int,
                                stages: List[StateTransformer]) -> int:
        """Relative path steps inside a condition (inert only)."""
        if isinstance(expr, ast.VarRef):
            # $x inside its own where clause: the context item itself.
            return input_id
        if isinstance(expr, ast.Source):
            # Inside a condition a bare leading name is a *relative* child
            # step (the paper's [location="Albania"]), not a dataset.
            out = self.fresh()
            stages.append(ChildStep(self.ctx, input_id, out, expr.name))
            return out
        if isinstance(expr, ast.Step):
            base = self._compile_condition_path(expr.base, input_id,
                                                stages)
            out = self.fresh()
            if expr.axis == ast.CHILD:
                stages.append(ChildStep(self.ctx, base, out, expr.tag))
            elif expr.axis == ast.DESCENDANT:
                stages.append(DescendantStep(self.ctx, base, out, expr.tag,
                                             freeze_regions=False))
            elif expr.axis == ast.TEXT:
                stages.append(TextStep(self.ctx, base, out))
            else:
                raise CompileError(
                    "backward axes are not supported inside predicate "
                    "conditions: {!r}".format(expr))
            return out
        raise CompileError(
            "unsupported condition expression {!r}".format(expr))

    # -- FLWOR -------------------------------------------------------------------------

    def _compile_flwor(self, expr: ast.FLWOR, per_tuple: bool) -> int:
        if per_tuple:
            # A FLWOR nested in another's return clause re-tuples the
            # stream: its *sequence* may iterate over the outer variable
            # (the flattening pattern), but its where/order/return parts
            # run per inner tuple and cannot reach outer content.
            bound = {f.var for f in expr.walk()
                     if isinstance(f, ast.FLWOR)}
            inner_parts = [expr.ret]
            if expr.where is not None:
                inner_parts.append(expr.where)
            if expr.order_key is not None:
                inner_parts.append(expr.order_key)
            for part in inner_parts:
                for node in part.walk():
                    if isinstance(node, ast.VarRef) \
                            and node.name not in bound:
                        raise CompileError(
                            "a nested FLWOR may not reference the outer "
                            "variable ${} in its where/order/return "
                            "(per-tuple alignment would be lost)"
                            .format(node.name))
        seq = self._compile(expr.seq, per_tuple=False)
        tuples = self.fresh()
        self.stages.append(ForTuples(self.ctx, seq, tuples))
        key_id = None
        if expr.order_key is not None:
            # Keys are extracted before the where filter so *every* tuple
            # has one (hidden tuples occupy their slot invisibly).
            key_copy = self.fresh()
            self.stages.append(Tee(self.ctx, tuples, key_copy))
            key_path = self._compile_relative(expr.order_key, key_copy,
                                              expr.var)
            key_id = self.fresh()
            self.stages.append(StringValue(self.ctx, key_path, key_id))
        if expr.where is not None:
            filtered = self.fresh()
            conditions, combine = self._compile_conditions(
                self._strip_var(expr.where, expr.var))
            self.stages.append(Predicate(
                self.ctx, tuples, filtered, conditions, combine=combine,
                scope=SCOPE_TUPLE,
                assume_fixed=not self.mutable_source))
            tuples = filtered
        # Return clause, per tuple, with the variable and lets bound.
        saved = {name: self._env.get(name)
                 for name in [expr.var] + [n for n, _ in expr.lets]}
        self._env[expr.var] = tuples
        for name, let_expr in expr.lets:
            # A let binds a per-tuple sequence: compile its path over a
            # tee of the tuple stream (or of an earlier binding).
            self._env[name] = self._compile(let_expr, per_tuple=True)
        ret = self._compile(expr.ret, per_tuple=True)
        for name, old_binding in saved.items():
            if old_binding is None:
                self._env.pop(name, None)
            else:
                self._env[name] = old_binding
        if key_id is not None:
            from ..operators import SortTuples
            sorted_id = self.fresh()
            self.stages.append(SortTuples(self.ctx, ret, key_id, sorted_id,
                                          descending=expr.descending))
            ret = sorted_id
        return ret

    def _compile_relative(self, expr: ast.Expr, base_id: int,
                          var: str) -> int:
        """Compile a path relative to the loop variable (e.g. a sort key)."""
        if isinstance(expr, ast.VarRef):
            if expr.name != var:
                raise CompileError(
                    "only the loop variable may appear here: ${}"
                    .format(expr.name))
            return base_id
        if isinstance(expr, ast.Step):
            base = self._compile_relative(expr.base, base_id, var)
            out = self.fresh()
            if expr.axis == ast.CHILD:
                self.stages.append(ChildStep(self.ctx, base, out, expr.tag))
            elif expr.axis == ast.DESCENDANT:
                self.stages.append(DescendantStep(self.ctx, base, out,
                                                  expr.tag))
            elif expr.axis == ast.TEXT:
                self.stages.append(TextStep(self.ctx, base, out))
            else:
                raise CompileError("unsupported key axis {!r}".format(expr))
            return out
        raise CompileError("unsupported sort key {!r}".format(expr))

    @staticmethod
    def _strip_var(cond: ast.Expr, var: str) -> ast.Expr:
        """Check the where clause references only the loop variable."""
        for node in cond.walk():
            if isinstance(node, ast.VarRef) and node.name != var:
                raise CompileError(
                    "where clause may only use ${}".format(var))
        return cond

    # -- construction / sequences / literals ------------------------------------------------

    def _compile_ctor(self, expr: ast.ElementCtor, per_tuple: bool) -> int:
        inner = self._compile_ctor_content(expr.content, per_tuple)
        out = self.fresh()
        if per_tuple:
            self.stages.append(TupleConstruct(
                self.ctx, inner, out, expr.tag,
                seal=not self.mutable_source))
        else:
            self.stages.append(StreamConstruct(self.ctx, inner, out,
                                               expr.tag))
        return out

    def _compile_ctor_content(self, content: List[ast.Expr],
                              per_tuple: bool) -> int:
        if not content:
            raise CompileError("empty element constructors are not "
                               "supported")
        if per_tuple and any(isinstance(item, ast.FLWOR)
                             for item in content):
            raise CompileError(
                "a FLWOR inside a per-tuple constructor is not supported "
                "(the constructor would wrap each inner tuple, not the "
                "inner sequence); lift it to its own query")
        if len(content) == 1:
            return self._compile(content[0], per_tuple)
        return self._compile_sequence(ast.SequenceExpr(content), per_tuple)

    def _compile_sequence(self, expr: ast.SequenceExpr,
                          per_tuple: bool) -> int:
        if not per_tuple:
            raise CompileError(
                "sequence concatenation is supported inside FLWOR return "
                "clauses and constructors only")
        if any(isinstance(item, ast.FLWOR) for item in expr.items):
            raise CompileError(
                "a FLWOR cannot be one item of a per-tuple sequence "
                "(tuple alignment would be lost)")
        # Chain right-associatively: (a, (b, (c, d))).
        ids = [self._compile(item, per_tuple=True) for item in expr.items]
        right = ids[-1]
        for left in reversed(ids[:-1]):
            out = self.fresh()
            self.stages.append(Concat(self.ctx, left, right, out))
            right = out
        return right

    def _compile_literal(self, expr: ast.StringLit, per_tuple: bool) -> int:
        if not per_tuple:
            raise CompileError("string literals are only supported inside "
                               "FLWOR return clauses")
        # Pace the literal off the current loop variable's tuple stream.
        if not self._env:
            raise CompileError("a string literal needs an enclosing FLWOR")
        pacing = next(reversed(self._env.values()))
        copy = self.fresh()
        self.stages.append(Tee(self.ctx, pacing, copy))
        out = self.fresh()
        self.stages.append(LiteralText(self.ctx, copy, out, expr.value,
                                       seal=not self.mutable_source))
        return out

    # -- aggregates -------------------------------------------------------------------------------

    def _compile_funcall(self, expr: ast.FunCall, per_tuple: bool) -> int:
        if expr.name == "count":
            base = self._compile(expr.args[0], per_tuple=False)
            out = self.fresh()
            self.stages.append(CountItems(self.ctx, base, out))
            return out
        if expr.name in ("sum", "avg"):
            base = self._compile(expr.args[0], per_tuple=False)
            out = self.fresh()
            self.stages.append(NumericAggregate(self.ctx, base, out,
                                                op=expr.name))
            return out
        if expr.name in ("min", "max"):
            base = self._compile(expr.args[0], per_tuple=False)
            out = self.fresh()
            self.stages.append(MinMaxAggregate(self.ctx, base, out,
                                               op=expr.name))
            return out
        if expr.name == "contains":
            raise CompileError(
                "contains() is supported inside predicates and where "
                "clauses only")
        raise CompileError("unsupported function {!r}".format(expr.name))


def compile_query(expr: ast.Expr, source_id: int = 0,
                  mutable_source: bool = False,
                  ctx: Optional[Context] = None) -> Plan:
    """Compile an AST into an executable :class:`Plan`."""
    return Compiler(ctx=ctx, source_id=source_id,
                    mutable_source=mutable_source).compile(expr)
