"""Whole-process crash recovery from the write-ahead log.

Counterpart of :mod:`repro.fault.wal`: given a log directory produced
by a durable run (``XFlux.run_xml(durable=...)``,
``MultiQueryRun.run_durable``, or a sharded run with ``durable_dir``),
:func:`recover` rebuilds the executor in a *fresh process* and brings
it to the exact pre-crash state:

1. scan the log (:func:`~repro.fault.wal.scan_wal` — torn tails are
   truncated at the last valid record, anything else raises
   :class:`~repro.fault.wal.WalError`),
2. restore the newest valid checkpoint envelope (for sharded logs, the
   newest per shard), or build a fresh executor from the manifest when
   a shard never checkpointed,
3. replay exactly the logged frame suffix past each checkpoint's
   cover point, in sequence order.

Soundness rests on the write-ahead invariant (a frame is on disk
before any pipeline sees its events) plus deterministic execution: the
recovered state equals the uninterrupted state after the last logged
frame, byte for byte.  When the original input is re-supplied
(``text=`` / ``events=``) the run then *resumes* — the already-covered
event prefix is skipped and the remainder is fed — so the final
displays and statuses are byte-identical to a run that never crashed.
Quarantines recorded in the log (STATUS records) are merged into the
recovered statuses, covering faults that are not replay-reproducible.

Every recovery attaches a flight-recorder bundle
(:mod:`repro.obs.flightrec`) describing what was restored, replayed,
and repaired.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..events import codec
from .wal import WalError, WalState, scan_wal


class RecoveryError(WalError):
    """The log is readable but the run cannot be reconstructed."""


class RecoveryResult:
    """Outcome of one :func:`recover` call.

    Attributes:
        kind: ``"query"`` / ``"multiquery"`` / ``"sharded"``.
        queries: query texts, submission order.
        texts: recovered answers (``None`` for quarantined queries).
        statuses: per-query ``"ok"`` / ``"quarantined"`` / ``"empty"``.
        error_reports: query index -> error report.
        frames_replayed: logged frames fed past the checkpoint(s).
        events_resumed: events fed from the re-supplied input tail.
        checkpoint_seqs: shard key -> cover seq of the restored
            checkpoint (``None`` key: whole-process).
        complete: the recovered run reached end of stream (EOS logged,
            or the input tail was re-supplied and drained).
        truncated: torn-tail repair note from the scan, or ``None``.
        bundle: the attached flight-recorder bundle.
        executors: the live executor(s) — one
            :class:`~repro.xquery.engine.MultiQueryRun` or
            :class:`~repro.xquery.engine.QueryRun`, or the per-shard
            list for sharded logs — for callers that keep feeding.
    """

    def __init__(self) -> None:
        self.kind = None
        self.queries: List[str] = []
        self.texts: List[Optional[str]] = []
        self.statuses: List[str] = []
        self.error_reports: dict = {}
        self.frames_replayed = 0
        self.events_resumed = 0
        self.checkpoint_seqs: dict = {}
        self.complete = False
        self.truncated: Optional[dict] = None
        self.bundle: Optional[dict] = None
        self.executors = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "queries": self.queries,
            "texts": self.texts,
            "statuses": self.statuses,
            "error_reports": {str(k): v for k, v
                              in self.error_reports.items()},
            "frames_replayed": self.frames_replayed,
            "events_resumed": self.events_resumed,
            "checkpoint_seqs": {("*" if k is None else str(k)): v
                                for k, v in self.checkpoint_seqs.items()},
            "complete": self.complete,
            "truncated": self.truncated,
        }


def _replay_frames(state: WalState, mq, floor: int,
                   batch_events: int) -> int:
    """Feed the logged frames past ``floor`` into ``mq``, in order."""
    replayed = 0
    for seq in range(floor + 1, state.last_frame + 1):
        payload = state.frames.get(seq)
        if payload is None:
            raise RecoveryError(
                "frame {} is gone from the log but a checkpoint at {} "
                "still needs it".format(seq, floor),
                reason="missing-frame")
        mq.feed_all(codec.decode_batch(payload))
        replayed += 1
    return replayed


def _events_consumed(state: WalState, batch_events: int) -> int:
    """Source events covered by frames ``1..last``, pruned ones included.

    Only full frames are ever pruned mid-stream (a partial frame exists
    only at end of stream, after which EOS is logged and no resume
    happens), so missing sequence numbers each stand for exactly
    ``batch_events`` events.
    """
    consumed = sum(struct.unpack_from("<I", p)[0]
                   for p in state.frames.values())
    missing = state.last_frame - len(
        [s for s in state.frames if s <= state.last_frame])
    return consumed + missing * batch_events


def _tail_events(state: WalState, manifest: dict, text, events,
                 source_id: int, needs_oids: bool):
    """The not-yet-logged event suffix of the re-supplied input."""
    if text is None and events is None:
        return None
    if events is None:
        from ..xmlio.tokenizer import tokenize
        events = list(tokenize(text, stream_id=source_id,
                               emit_oids=needs_oids))
    else:
        events = list(events)
    consumed = _events_consumed(state,
                                int(manifest.get("batch_events", 512)))
    return events[consumed:]


def _merge_statuses(mq, notes, index_of) -> None:
    """Force quarantines the log recorded but the replay did not.

    Deterministic replay normally reproduces them; this covers faults
    that fire once (injected faults, environmental failures) so the
    recovered statuses still match the interrupted run's.
    """
    statuses = mq.statuses()
    for note in notes:
        local = index_of(note.get("query"))
        if local is None or statuses[local] != "ok":
            continue
        slot = mq._slots[local]
        mq.mux.quarantined[slot] = {
            "error_type": note.get("error_type"),
            "message": note.get("message"),
            "recovered_from_log": True,
            "at_seq": note.get("at_seq"),
        }


def _recover_single(state: WalState, manifest: dict, text, events,
                    finish, result: RecoveryResult) -> None:
    from ..xquery.engine import MultiQueryRun, XFlux
    kind = manifest["kind"]
    ckpt = state.checkpoints.get(None)
    floor = ckpt[0] if ckpt else 0
    if ckpt:
        result.checkpoint_seqs[None] = floor
    if kind == "multiquery":
        if ckpt is not None:
            mq = MultiQueryRun.restore(ckpt[1],
                                       queries=manifest["queries"])
        else:
            mq = MultiQueryRun(manifest["queries"],
                               **manifest.get("engine", {}))
        source_id, needs_oids = mq.source_id, mq.needs_oids
    else:
        engine = XFlux(manifest["query"],
                       mutable_source=manifest.get("mutable_source",
                                                   False),
                       ignore_updates=manifest.get("ignore_updates",
                                                   False))
        mq = engine.start()
        if ckpt is not None:
            mq.restore(ckpt[1])
        source_id = mq.plan.source_id
        needs_oids = mq.plan.needs_oids
    result.frames_replayed = _replay_frames(
        state, mq, floor, int(manifest.get("batch_events", 512)))
    tail = _tail_events(state, manifest, text, events,
                        source_id, needs_oids)
    if tail is not None:
        mq.feed_all(tail)
        result.events_resumed = len(tail)
    result.complete = state.eos_seq is not None or tail is not None
    if finish if finish is not None else result.complete:
        mq.finish()
    if kind == "multiquery":
        _merge_statuses(mq, state.statuses, lambda q: q)
        result.texts = mq.texts()
        result.statuses = mq.statuses()
        result.error_reports = mq.error_reports()
    else:
        result.texts = [mq.text()]
        result.statuses = ["ok"]
    result.executors = mq


def _recover_sharded(state: WalState, manifest: dict, text, events,
                     finish, result: RecoveryResult) -> None:
    """Rebuild every shard in-process and reassemble submission order.

    Shard workers run plain :class:`MultiQueryRun` executors over the
    broadcast frames, so recovering them inline (no re-fork) yields the
    same bytes the supervised run would have produced.
    """
    from ..xquery.engine import MultiQueryRun
    queries = manifest["queries"]
    shards = manifest["shards"]
    engine_kwargs = manifest.get("engine", {})
    do_finish = None
    texts: List[Optional[str]] = [None] * len(queries)
    statuses: List[str] = ["ok"] * len(queries)
    tail = None
    shard_mqs = []
    for shard_no, indices in enumerate(shards):
        sub = [queries[i] for i in indices]
        ckpt = state.checkpoints.get(shard_no)
        if ckpt is not None:
            mq = MultiQueryRun.restore(ckpt[1], queries=sub)
            floor = ckpt[0]
            result.checkpoint_seqs[shard_no] = floor
        else:
            mq = MultiQueryRun(sub, **engine_kwargs)
            floor = 0
        result.frames_replayed += _replay_frames(
            state, mq, floor, int(manifest.get("batch_events", 4096)))
        if tail is None:
            tail = _tail_events(state, manifest, text, events,
                                mq.source_id,
                                bool(manifest.get("needs_oids",
                                                  mq.needs_oids)))
        if tail is not None:
            mq.feed_all(tail)
            result.events_resumed = len(tail)
        result.complete = state.eos_seq is not None or tail is not None
        if do_finish is None:
            do_finish = finish if finish is not None else result.complete
        if do_finish:
            mq.finish()

        def to_local(global_q, indices=indices):
            try:
                return indices.index(global_q)
            except ValueError:
                return None

        _merge_statuses(mq, state.statuses, to_local)
        sub_texts = mq.texts()
        sub_statuses = mq.statuses()
        sub_reports = mq.error_reports()
        for local, global_q in enumerate(indices):
            texts[global_q] = sub_texts[local]
            statuses[global_q] = sub_statuses[local]
            if local in sub_reports:
                result.error_reports[global_q] = sub_reports[local]
        shard_mqs.append(mq)
    result.texts = texts
    result.statuses = statuses
    result.executors = shard_mqs


def recover(directory: str, text: Optional[str] = None,
            events=None, finish: Optional[bool] = None) -> RecoveryResult:
    """Recover a durable run from its write-ahead log directory.

    Args:
        directory: the WAL directory of the interrupted run.
        text: the original XML document, to *resume* past the logged
            position (optional; without it the run is restored exactly
            to the last logged frame).
        events: the original event stream (mutually exclusive
            alternative to ``text`` for update-stream runs).
        finish: force finishing (or not) the recovered pipelines;
            ``None`` finishes exactly when the stream is complete —
            EOS logged, or the input tail was re-supplied.

    Returns a :class:`RecoveryResult` with a flight-recorder bundle
    attached; raises :class:`~repro.fault.wal.WalError` on mid-log
    corruption and :class:`RecoveryError` when the log is sound but
    insufficient (e.g. a needed frame was truncated away).
    """
    if text is not None and events is not None:
        raise ValueError("pass text= or events=, not both")
    state = scan_wal(directory, repair=True)
    manifest = state.manifest or {}
    kind = manifest.get("kind")
    result = RecoveryResult()
    result.kind = kind
    result.truncated = state.truncated
    if kind == "query":
        result.queries = [manifest["query"]]
        _recover_single(state, manifest, text, events, finish, result)
    elif kind == "multiquery":
        result.queries = list(manifest["queries"])
        _recover_single(state, manifest, text, events, finish, result)
    elif kind == "sharded":
        result.queries = list(manifest["queries"])
        _recover_sharded(state, manifest, text, events, finish, result)
    else:
        raise RecoveryError(
            "manifest names no recoverable run kind: {!r}".format(kind),
            reason="bad-record")
    from ..obs.flightrec import build_bundle
    result.bundle = build_bundle(
        "recovery",
        wal_directory=directory,
        wal_records=state.records,
        last_frame=state.last_frame,
        eos_seq=state.eos_seq,
        torn_tail=state.truncated,
        checkpoint_seqs={("*" if k is None else k): v for k, v
                         in result.checkpoint_seqs.items()},
        frames_replayed=result.frames_replayed,
        events_resumed=result.events_resumed,
        statuses=result.statuses,
    )
    return result


__all__ = ["RecoveryError", "RecoveryResult", "recover"]
