"""Fault tolerance: checkpoints, fault injection, recovery proofs.

Two halves:

* :mod:`repro.fault.checkpoint` — versioned envelopes around pickled
  pipeline state; the format worker processes use to ship periodic
  snapshots to the supervising parent, and the format
  ``Pipeline.checkpoint()`` / ``MultiQueryRun.checkpoint()`` expose to
  embedders.
* :mod:`repro.fault.inject` — seeded :class:`FaultPlan` scripts (kill a
  worker, corrupt/drop/duplicate a frame, raise inside a stage) that the
  tests, the chaos CLI and the benchmark use to force every recovery
  path to actually run.

The supervision machinery that consumes both lives in
:mod:`repro.parallel.shard`; quarantine of individual failing queries
lives in :mod:`repro.core.multiplex` and
:class:`~repro.xquery.engine.MultiQueryRun`.

Durability (PR 10) adds a third half: :mod:`repro.fault.wal` journals
every frame to a segmented write-ahead log ahead of dispatch, and
:mod:`repro.fault.recover` rebuilds a whole crashed process from it —
restore the newest checkpoint, replay the logged suffix, resume.
"""

from .checkpoint import (CheckpointError, decode_checkpoint,
                         encode_checkpoint, require_schema)
from .inject import (FaultAction, FaultPlan, InjectedFault,
                     arm_stage_fault, error_report)
from .recover import RecoveryError, RecoveryResult, recover
from .wal import WalError, WriteAheadLog, drive_durable, scan_wal

__all__ = [
    "CheckpointError", "encode_checkpoint", "decode_checkpoint",
    "require_schema",
    "FaultPlan", "FaultAction", "InjectedFault", "arm_stage_fault",
    "error_report",
    "WalError", "WriteAheadLog", "drive_durable", "scan_wal",
    "RecoveryError", "RecoveryResult", "recover",
]
