"""Seeded fault injection: the mechanism that proves recovery paths run.

A :class:`FaultPlan` is a small, deterministic script of failures —
kill a shard worker after N frames, corrupt/drop/duplicate the frame
with sequence number K, raise inside pipeline stage S of query Q at its
M-th event — threaded through
:class:`~repro.parallel.ShardedMultiQueryRun` (``fault_plan=...`` or the
``REPRO_FAULTS`` environment variable) and
:class:`~repro.xquery.engine.MultiQueryRun`.  The chaos CLI
(``python -m repro chaos``), the fault benchmark (``bench --multiquery
--fault-plan``) and the differential tests in ``tests/test_fault.py``
all drive recovery through plans, never through hand-rolled monkey
patching, so every path they prove is the path production failures
take.

Spec grammar (the ``REPRO_FAULTS`` / ``--fault-plan`` format)::

    spec    = action (';' action)*
    action  = kind ':' key '=' value (',' key '=' value)*

    kill:shard=0,after=3          SIGKILL shard 0's worker after 3 frames
    corrupt:frame=5[,shard=0]     flip one payload byte of frame 5
    drop:frame=5[,shard=0]        never deliver frame 5 to the shard
    dup:frame=5[,shard=0]         deliver frame 5 twice
    raise:query=2,stage=1,at=100  raise in stage 1 of query 2, 100th call
    seed=42                       corruption-site seed (optional)

``shard`` defaults to 0.  Frame sequence numbers are 1-based (the first
broadcast frame is 1); ``at`` counts the stage transformer's
``process()`` calls, also 1-based.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

_FRAME_KINDS = ("corrupt", "drop", "dup")
_KINDS = ("kill",) + _FRAME_KINDS + ("raise",)


class InjectedFault(RuntimeError):
    """Raised by an armed stage fault; carries where it was planted."""

    def __init__(self, query: Optional[int], stage: int, at: int) -> None:
        self.query = query
        self.stage = stage
        self.at = at
        super().__init__(
            "injected fault in stage {} at call {}{}".format(
                stage, at,
                "" if query is None else " (query {})".format(query)))


def error_report(exc: BaseException, **context) -> dict:
    """A picklable, JSON-able capture of an exception for quarantine.

    The runtime never re-raises quarantined exceptions; this dict is
    what surfaces in ``stats()``, worker result payloads, and the chaos
    CLI's artifact files instead.
    """
    import traceback
    report = {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__)),
    }
    for key in ("rule", "stage", "stage_index", "reason", "offset",
                "query", "at"):
        value = getattr(exc, key, None)
        if value is not None:
            report[key] = value
    report.update(context)
    return report


class FaultAction:
    """One scripted failure.  ``kind`` decides which fields matter."""

    __slots__ = ("kind", "shard", "after", "frame", "query", "stage", "at")

    def __init__(self, kind: str, shard: int = 0,
                 after: Optional[int] = None, frame: Optional[int] = None,
                 query: Optional[int] = None, stage: Optional[int] = None,
                 at: Optional[int] = None) -> None:
        if kind not in _KINDS:
            raise ValueError("unknown fault kind {!r} (expected one of "
                             "{})".format(kind, ", ".join(_KINDS)))
        if kind == "kill" and after is None:
            raise ValueError("kill needs after=<frames>")
        if kind in _FRAME_KINDS and frame is None:
            raise ValueError("{} needs frame=<seq>".format(kind))
        if kind == "raise" and (query is None or stage is None
                                or at is None):
            raise ValueError("raise needs query=, stage= and at=")
        self.kind = kind
        self.shard = shard
        self.after = after
        self.frame = frame
        self.query = query
        self.stage = stage
        self.at = at

    def to_spec(self) -> str:
        if self.kind == "kill":
            return "kill:shard={},after={}".format(self.shard, self.after)
        if self.kind in _FRAME_KINDS:
            return "{}:frame={},shard={}".format(self.kind, self.frame,
                                                 self.shard)
        return "raise:query={},stage={},at={}".format(self.query,
                                                      self.stage, self.at)

    def __repr__(self) -> str:
        return "FaultAction({})".format(self.to_spec())


class FaultPlan:
    """An immutable script of :class:`FaultAction` entries plus a seed.

    The plan itself never mutates while running — the supervisor keeps
    its own fired/killed bookkeeping — so one plan object can drive the
    clean-versus-faulted comparison runs of the benchmark and tests.
    """

    def __init__(self, actions: Sequence[FaultAction] = (),
                 seed: int = 0) -> None:
        self.actions: Tuple[FaultAction, ...] = tuple(actions)
        self.seed = seed

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` / ``--fault-plan`` spec grammar."""
        actions: List[FaultAction] = []
        seed = 0
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            if raw.startswith("seed="):
                seed = int(raw[len("seed="):])
                continue
            if ":" not in raw:
                raise ValueError(
                    "bad fault action {!r} (expected kind:key=value,...)"
                    .format(raw))
            kind, _, rest = raw.partition(":")
            kwargs: Dict[str, int] = {}
            for pair in rest.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, _, value = pair.partition("=")
                if not value:
                    raise ValueError("bad fault parameter {!r} in {!r}"
                                     .format(pair, raw))
                kwargs[key.strip()] = int(value)
            actions.append(FaultAction(kind.strip(), **kwargs))
        return cls(actions, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The ``REPRO_FAULTS`` hook; ``None`` when the variable is unset."""
        spec = (environ if environ is not None else os.environ).get(
            "REPRO_FAULTS", "")
        return cls.parse(spec) if spec.strip() else None

    def to_spec(self) -> str:
        parts = [a.to_spec() for a in self.actions]
        if self.seed:
            parts.append("seed={}".format(self.seed))
        return ";".join(parts)

    # -- supervisor queries ---------------------------------------------------

    def kill_after(self, shard: int) -> Optional[int]:
        """Frames after which the shard's worker is killed (or None)."""
        for a in self.actions:
            if a.kind == "kill" and a.shard == shard:
                return a.after
        return None

    def frame_actions(self, shard: int, seq: int) -> List[str]:
        """Frame-level action kinds scripted for ``(shard, seq)``."""
        return [a.kind for a in self.actions
                if a.kind in _FRAME_KINDS and a.shard == shard
                and a.frame == seq]

    def stage_faults(self, queries: Optional[Sequence[int]] = None
                     ) -> List[Tuple[int, int, int]]:
        """``(query, stage, at)`` triples, optionally remapped to a shard.

        With ``queries`` (the shard's global query indices) the returned
        query positions are shard-local; faults on queries the shard does
        not own are omitted.
        """
        out = []
        for a in self.actions:
            if a.kind != "raise":
                continue
            if queries is None:
                out.append((a.query, a.stage, a.at))
            elif a.query in queries:
                out.append((list(queries).index(a.query), a.stage, a.at))
        return out

    def corrupt_bytes(self, frame: bytes, seq: int) -> bytes:
        """Deterministically flip one byte past the length header.

        The flip lands in the seq/payload/CRC region, so a checked frame
        always fails its CRC (or its gap check) rather than silently
        decoding; the 4-byte length word is left intact so framing never
        desynchronizes — exactly the corruption class the CRC trailer
        exists to catch.
        """
        header = 4
        if len(frame) <= header:
            return frame
        span = len(frame) - header
        pos = header + (seq * 2654435761 + self.seed * 40503) % span
        corrupted = bytearray(frame)
        corrupted[pos] ^= 0xFF
        return bytes(corrupted)

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __repr__(self) -> str:
        return "FaultPlan({!r})".format(self.to_spec())


class _RaisingProcess:
    """Wraps a transformer's ``process``; raises on the ``at``-th call.

    A module-level class rather than a closure so an armed pipeline
    stays picklable (checkpoints taken before the fault fires carry the
    armed fault, remaining count included).  Calls go through
    ``type(t).process`` explicitly: the instance attribute this object
    is stored under must never shadow the real implementation.
    """

    __slots__ = ("t", "remaining", "query", "stage", "at")

    def __init__(self, transformer, at: int, query: Optional[int],
                 stage: int) -> None:
        self.t = transformer
        self.remaining = at
        self.query = query
        self.stage = stage
        self.at = at

    def __call__(self, e):
        self.remaining -= 1
        if self.remaining <= 0:
            raise InjectedFault(self.query, self.stage, self.at)
        return type(self.t).process(self.t, e)


def arm_stage_fault(run, stage: int, at: int,
                    query: Optional[int] = None) -> None:
    """Plant an :class:`InjectedFault` in one stage of a live run.

    ``run`` is a :class:`~repro.xquery.engine.QueryRun`; the fault fires
    on the stage transformer's ``at``-th ``process()`` call and escapes
    through the pipeline exactly like an operator bug would.
    """
    wrappers = run.pipeline.wrappers
    if not 0 <= stage < len(wrappers):
        raise ValueError(
            "stage {} out of range for a {}-stage pipeline".format(
                stage, len(wrappers)))
    transformer = wrappers[stage].t
    transformer.process = _RaisingProcess(transformer, at, query, stage)
    # A fused driver captured the original bound method at codegen time;
    # regenerate it so the armed fault is actually on the hot path.
    run.pipeline.rebind_fused()
