"""Segmented write-ahead log for durable stream processing.

The shard supervisor (PR 5) made *worker* death survivable, but the
engine process itself was a single point of loss: SIGKILL it mid-stream
and every region table, checkpoint and pending update evaporated.  This
module closes that hole.  A :class:`WriteAheadLog` journals every
broadcast frame to disk *before* it is dispatched to any pipeline,
interleaved with periodic checkpoint envelopes
(:mod:`repro.fault.checkpoint`), so a fresh process can rebuild the
exact pre-crash state: restore the newest checkpoint, replay the logged
frame suffix (:mod:`repro.fault.recover`).

Record format — every record is a codec-v2 checked frame
(:func:`repro.events.codec.frame_checked`: flagged length word,
sequence number, payload, CRC32 trailer) whose payload is one record
type byte followed by the record body:

======== ===== ==================================================
record   seq   body
======== ===== ==================================================
META     0     JSON run manifest (kind, queries, engine flags)
FRAME    k     the encoded event batch of broadcast frame ``k``
CKPT     k     ``<i`` shard (-1: whole process) + checkpoint blob
               covering frames ``<= k``
STATUS   k     JSON quarantine note observed after frame ``k``
EOS      k     empty; the stream completed after ``k`` frames
======== ===== ==================================================

Reusing the checked-frame wire format means the log inherits the
codec's failure taxonomy for free: a torn write (the crash landed
mid-record) reads back as ``reason="truncated"`` and is repaired by
truncating the segment at the last valid record; bit rot fails its CRC
and surfaces as a structured :class:`WalError` — recovery never
unpickles garbage.

Segments and truncation: records append to ``wal-NNNNNNNN.seg`` files.
Rotation is *checkpoint-gated*: a new segment may only be opened once
every registered shard has shipped at least one checkpoint, because the
new segment is made self-sufficient — it starts with a fresh META
record, the newest checkpoint per shard, and copies of the frames past
the replay floor — and every older segment is then deleted.  The live
log is therefore bounded by one segment plus the replay tail between
the oldest live checkpoint and the write head.

Durability model: every record is flushed to the OS before the journal
reports it written, so the log survives SIGKILL of the process.  Pass
``fsync=True`` to also survive power loss (one ``os.fsync`` per
record; an order of magnitude slower).
"""

from __future__ import annotations

import io
import json
import os
import re
import struct
from typing import Dict, List, Optional, Tuple

from ..events import codec

WAL_VERSION = 1

#: Record type bytes (first payload byte of every record).
R_META = 1
R_FRAME = 2
R_CKPT = 3
R_STATUS = 4
R_EOS = 5

_SHARD = struct.Struct("<i")
_COUNT = struct.Struct("<I")
_SEGMENT_RE = re.compile(r"wal-(\d{8})\.seg$")


def _segment_name(index: int) -> str:
    return "wal-{:08d}.seg".format(index)


class WalError(RuntimeError):
    """The log cannot be written or read back soundly.

    Attributes:
        reason: machine-readable failure class (``"corrupt"``,
            ``"torn-tail"``, ``"missing-frame"``, ``"not-a-log"``,
            ``"exists"``, ``"bad-record"``).
        segment: path of the segment file involved, if any.
        offset: byte offset inside that segment, if known.
    """

    def __init__(self, message: str, reason: Optional[str] = None,
                 segment: Optional[str] = None,
                 offset: Optional[int] = None) -> None:
        self.reason = reason
        self.segment = segment
        self.offset = offset
        details = []
        if reason is not None:
            details.append("reason={}".format(reason))
        if segment is not None:
            details.append("segment={}".format(segment))
        if offset is not None:
            details.append("offset={}".format(offset))
        if details:
            message = "{} [{}]".format(message, ", ".join(details))
        super().__init__(message)


def list_segments(directory: str) -> List[str]:
    """Segment file paths of ``directory``, oldest first."""
    out = []
    for name in os.listdir(directory):
        if _SEGMENT_RE.match(name):
            out.append(os.path.join(directory, name))
    return sorted(out)


class WriteAheadLog:
    """Append-only journal of frames, checkpoints and status notes.

    Args:
        directory: created if missing; must not already hold a log.
        segment_bytes: rotation is considered once the current segment
            exceeds this size (and every shard has checkpointed).
        fsync: fsync after every record (power-loss durability); the
            default flush-only already survives process SIGKILL.
        crash_after_frames: test/chaos hook — SIGKILL this process the
            moment that frame sequence number has been durably logged
            (before it is dispatched to any consumer).  Reads the
            ``REPRO_CRASH_AFTER`` environment variable when None.
    """

    def __init__(self, directory: str, segment_bytes: int = 4 << 20,
                 fsync: bool = False,
                 crash_after_frames: Optional[int] = None) -> None:
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        if crash_after_frames is None:
            env = os.environ.get("REPRO_CRASH_AFTER", "")
            crash_after_frames = int(env) if env.strip() else None
        self.crash_after_frames = crash_after_frames
        os.makedirs(directory, exist_ok=True)
        if list_segments(directory):
            raise WalError(
                "directory already holds a write-ahead log; recover or "
                "remove it first: {}".format(directory), reason="exists")
        self.manifest: Optional[dict] = None
        self.frames = 0             # newest logged frame sequence
        self.records = 0
        self.rotations = 0
        self.bytes_written = 0
        #: frame seq -> batch payload, retained until checkpoint-pruned
        #: (serves shard replay and rotation tail copies).
        self._payloads: Dict[int, bytes] = {}
        #: shard key (None: whole process) -> newest covered frame seq.
        self._floors: Dict[Optional[int], int] = {}
        self._ckpts: Dict[Optional[int], Tuple[int, bytes]] = {}
        self._statuses: List[Tuple[int, bytes]] = []
        self._seg_index = 1
        self._seg_size = 0
        self._fh = open(os.path.join(directory,
                                     _segment_name(self._seg_index)), "wb")
        self._closed = False

    # -- record appends -------------------------------------------------------

    def _append(self, rtype: int, seq: int, body: bytes) -> None:
        if self._closed:
            raise WalError("log is closed", reason="closed")
        record = codec.frame_checked(bytes([rtype]) + body, seq)
        self._fh.write(record)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._seg_size += len(record)
        self.bytes_written += len(record)
        self.records += 1

    def begin(self, manifest: dict) -> None:
        """Write the run manifest; must be the first record logged."""
        manifest = dict(manifest, wal_version=WAL_VERSION)
        self.manifest = manifest
        self._append(R_META, 0, json.dumps(manifest,
                                           sort_keys=True).encode("utf-8"))

    def register_shards(self, shards) -> None:
        """Declare the shard keys whose checkpoints gate truncation.

        Until every registered shard has logged a checkpoint the replay
        floor stays at 0 and no frame is ever discarded.
        """
        for shard in shards:
            self._floors.setdefault(shard, 0)

    def log_frame(self, seq: int, payload: bytes) -> None:
        """Journal one broadcast frame ahead of dispatch.

        ``payload`` is the encoded event batch
        (:func:`repro.events.codec.encode_batch`); the on-wire frame
        bytes are reconstructible exactly via :meth:`frame_bytes`.
        Sequence numbers must be contiguous and 1-based.
        """
        if seq != self.frames + 1:
            raise WalError(
                "frame sequence jump: expected {}, got {}".format(
                    self.frames + 1, seq), reason="bad-record")
        self._append(R_FRAME, seq, payload)
        self._payloads[seq] = payload
        self.frames = seq
        if self.crash_after_frames is not None \
                and seq >= self.crash_after_frames:
            import signal
            os.kill(os.getpid(), signal.SIGKILL)

    def checkpoint(self, blob: bytes, covers_seq: int,
                   shard: Optional[int] = None) -> None:
        """Log a checkpoint envelope covering frames ``<= covers_seq``."""
        self._append(R_CKPT, covers_seq,
                     _SHARD.pack(-1 if shard is None else shard) + blob)
        self._ckpts[shard] = (covers_seq, blob)
        self._floors[shard] = covers_seq
        self._prune_payloads()
        self._maybe_rotate()

    def status(self, query: int, report: dict, seq: int) -> None:
        """Record a quarantine so recovery reproduces per-query statuses."""
        note = {"query": query,
                "error_type": report.get("error_type"),
                "message": report.get("message")}
        body = json.dumps(note, sort_keys=True).encode("utf-8")
        self._append(R_STATUS, seq, body)
        self._statuses.append((seq, body))

    def eos(self) -> None:
        """Mark the stream complete (all frames logged and dispatched)."""
        self._append(R_EOS, self.frames, b"")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- retention ------------------------------------------------------------

    def floor(self) -> int:
        """Newest frame seq every possible replay is past (0: keep all)."""
        return min(self._floors.values()) if self._floors else 0

    def _prune_payloads(self) -> None:
        floor = self.floor()
        for seq in [s for s in self._payloads if s <= floor]:
            del self._payloads[seq]

    def _maybe_rotate(self) -> None:
        """Checkpoint-gated segment rotation + old-segment truncation.

        The new segment is self-sufficient (manifest, newest checkpoint
        per shard, the replay tail past the floor), so every older
        segment can be deleted — this is what bounds the log.
        """
        if self._seg_size < self.segment_bytes or self.floor() < 1:
            return
        old = list_segments(self.directory)
        self._fh.close()
        self._seg_index += 1
        self._seg_size = 0
        self._fh = open(os.path.join(self.directory,
                                     _segment_name(self._seg_index)), "wb")
        self.rotations += 1
        self._append(R_META, 0, json.dumps(
            self.manifest or {}, sort_keys=True).encode("utf-8"))
        for shard, (covers_seq, blob) in sorted(
                self._ckpts.items(),
                key=lambda kv: -1 if kv[0] is None else kv[0]):
            self._append(R_CKPT, covers_seq,
                         _SHARD.pack(-1 if shard is None else shard) + blob)
        for seq in sorted(self._payloads):
            self._append(R_FRAME, seq, self._payloads[seq])
        for seq, body in self._statuses:
            self._append(R_STATUS, seq, body)
        for path in old:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- read-back ------------------------------------------------------------

    def frame_payload(self, seq: int) -> bytes:
        """The logged batch payload of frame ``seq`` (memory, then disk)."""
        payload = self._payloads.get(seq)
        if payload is not None:
            return payload
        self._fh.flush()
        for record in iter_wal_records(self.directory):
            if record.rtype == R_FRAME and record.seq == seq:
                return record.body
        raise WalError("log no longer holds frame {} (floor {})".format(
            seq, self.floor()), reason="missing-frame")

    def frame_bytes(self, seq: int) -> bytes:
        """Frame ``seq`` re-wrapped exactly as it went over the wire."""
        return codec.frame_checked(self.frame_payload(seq), seq)

    def stats(self) -> dict:
        return {
            "directory": self.directory,
            "frames": self.frames,
            "records": self.records,
            "rotations": self.rotations,
            "bytes_written": self.bytes_written,
            "segments": len(list_segments(self.directory)),
            "floor": self.floor(),
            "retained_payloads": len(self._payloads),
        }


class WalRecord:
    """One decoded log record (see the module docstring for the table)."""

    __slots__ = ("rtype", "seq", "body", "segment", "offset")

    def __init__(self, rtype: int, seq: int, body: bytes,
                 segment: str, offset: int) -> None:
        self.rtype = rtype
        self.seq = seq
        self.body = body
        self.segment = segment
        self.offset = offset

    def __repr__(self) -> str:
        return "WalRecord(type={}, seq={}, {} bytes)".format(
            self.rtype, self.seq, len(self.body))


def iter_wal_records(directory: str, repair: bool = False):
    """Yield :class:`WalRecord` objects across all segments, in order.

    Failure policy (the recovery soundness rule, DESIGN.md section 14):

    * ``reason="truncated"`` at the tail of the *last* segment is a torn
      write — the crash landed mid-record.  With ``repair=True`` the
      segment is physically truncated at the last valid record and the
      scan ends cleanly; otherwise a :class:`WalError`
      (``reason="torn-tail"``) is raised.
    * any other failure — a CRC mismatch anywhere, or truncation in a
      non-final segment — is mid-log corruption: the suffix cannot be
      trusted, so a :class:`WalError` (``reason="corrupt"``) is raised
      instead of replaying a wrong prefix silently.
    """
    segments = list_segments(directory)
    if not segments:
        raise WalError("no write-ahead log in {}".format(directory),
                       reason="not-a-log")
    for path in segments:
        last = path == segments[-1]
        with open(path, "rb") as fh:
            offset = 0
            while True:
                try:
                    result = codec.read_frame_ex(fh, offset=offset)
                except codec.CodecError as exc:
                    if last and exc.reason == "truncated":
                        if repair:
                            _truncate_segment(path, offset)
                            return
                        raise WalError(
                            "torn tail record (crash mid-write); "
                            "re-scan with repair to truncate at the "
                            "last valid record",
                            reason="torn-tail", segment=path,
                            offset=offset)
                    raise WalError(
                        "mid-log corruption: {}".format(exc),
                        reason="corrupt", segment=path,
                        offset=exc.offset)
                if result is None:
                    break
                seq, payload, next_offset = result
                if not payload:
                    raise WalError("empty record", reason="bad-record",
                                   segment=path, offset=offset)
                yield WalRecord(payload[0], seq or 0, payload[1:],
                                path, offset)
                offset = next_offset


def _truncate_segment(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.truncate(offset)


class WalState:
    """Everything a recovery needs, scanned out of one log directory."""

    def __init__(self) -> None:
        self.manifest: Optional[dict] = None
        #: shard key (None: whole process) -> (covers_seq, blob).
        self.checkpoints: Dict[Optional[int], Tuple[int, bytes]] = {}
        self.frames: Dict[int, bytes] = {}
        self.statuses: List[dict] = []
        self.eos_seq: Optional[int] = None
        self.truncated: Optional[dict] = None
        self.records = 0

    @property
    def last_frame(self) -> int:
        return max(self.frames) if self.frames else 0

    def events_logged(self) -> int:
        """Total source events covered by the logged frames."""
        return sum(_COUNT.unpack_from(p)[0] for p in self.frames.values())


def scan_wal(directory: str, repair: bool = True) -> WalState:
    """Scan (and by default repair) a log directory into a `WalState`.

    Newest-wins for the manifest and per-shard checkpoints; duplicate
    frame records (a crash between rotation and old-segment deletion)
    collapse to the identical newest copy.
    """
    state = WalState()
    segments = list_segments(directory)
    try:
        for record in iter_wal_records(directory, repair=False):
            _absorb(state, record)
    except WalError as exc:
        if exc.reason != "torn-tail" or not repair:
            raise
        # Torn tail: truncate, then re-scan the records before the tear.
        state = WalState()
        dropped = os.path.getsize(exc.segment) - (exc.offset or 0)
        for record in iter_wal_records(directory, repair=True):
            _absorb(state, record)
        state.truncated = {"segment": exc.segment,
                           "offset": exc.offset,
                           "bytes_dropped": dropped}
    if state.manifest is None:
        raise WalError(
            "log holds no manifest record: {}".format(segments),
            reason="not-a-log")
    return state


def _absorb(state: WalState, record: WalRecord) -> None:
    state.records += 1
    if record.rtype == R_META:
        state.manifest = json.loads(record.body.decode("utf-8"))
    elif record.rtype == R_FRAME:
        state.frames[record.seq] = record.body
    elif record.rtype == R_CKPT:
        (shard,) = _SHARD.unpack_from(record.body)
        key = None if shard < 0 else shard
        prev = state.checkpoints.get(key)
        if prev is None or record.seq >= prev[0]:
            state.checkpoints[key] = (record.seq,
                                      record.body[_SHARD.size:])
    elif record.rtype == R_STATUS:
        note = json.loads(record.body.decode("utf-8"))
        note["at_seq"] = record.seq
        state.statuses.append(note)
    elif record.rtype == R_EOS:
        state.eos_seq = record.seq
    else:
        raise WalError("unknown record type {}".format(record.rtype),
                       reason="bad-record", segment=record.segment,
                       offset=record.offset)


# -- durable drive loop -------------------------------------------------------


def drive_durable(engine, events, wal: WriteAheadLog,
                  batch_events: int = 512,
                  checkpoint_every: int = 16,
                  checkpoint_cost_factor: float = 9.0) -> None:
    """Feed ``events`` through ``engine`` with write-ahead journaling.

    The loop invariant every recovery rests on: a frame is durably on
    disk *before* any pipeline sees its events, and a checkpoint record
    covering frames ``<= k`` is logged only after the engine has fully
    applied frame ``k``.  Quarantines observed between frames are
    logged as STATUS records so a recovery reproduces per-query
    statuses even when the triggering fault is not replayable.

    Checkpoints are *time-amortized*: ``checkpoint_every`` frames make a
    checkpoint eligible, but one is only taken once the engine has spent
    at least ``checkpoint_cost_factor`` times the previous checkpoint's
    duration doing real work since.  Snapshotting a blocking-heavy run
    pickles state proportional to the buffered stream, so a fixed frame
    cadence would cost an unbounded fraction of the run at scale; the
    amortization rule bounds steady-state checkpoint overhead to about
    ``1 / checkpoint_cost_factor`` by construction.  Pass ``0`` to
    disable the gate and checkpoint at the exact frame cadence (tests
    that need deterministic checkpoint placement do).

    ``engine`` is duck-typed: ``feed_all`` / ``checkpoint`` /
    ``finish``, with the multi-query quarantine surface
    (``mux.quarantined`` + ``_slots``) picked up when present.
    """
    import time as _time
    if batch_events < 1:
        raise ValueError("batch_events must be >= 1")
    logged_quarantines: set = set()

    def poll_statuses(seq: int) -> None:
        mux = getattr(engine, "mux", None)
        slots = getattr(engine, "_slots", None)
        if mux is None or slots is None:
            return
        for i, slot in enumerate(slots):
            if slot in mux.quarantined and i not in logged_quarantines:
                logged_quarantines.add(i)
                wal.status(i, mux.quarantined[slot], seq)

    seq = 0
    since_ckpt = 0
    ckpt_cost = 0.0
    ckpt_done_at = _time.perf_counter()

    def dispatch(batch) -> None:
        nonlocal seq, since_ckpt, ckpt_cost, ckpt_done_at
        seq += 1
        wal.log_frame(seq, codec.encode_batch(batch))
        engine.feed_all(batch)
        poll_statuses(seq)
        since_ckpt += 1
        if since_ckpt >= checkpoint_every > 0:
            now = _time.perf_counter()
            if checkpoint_cost_factor <= 0 or \
                    now - ckpt_done_at >= ckpt_cost * checkpoint_cost_factor:
                wal.checkpoint(engine.checkpoint(), seq)
                ckpt_done_at = _time.perf_counter()
                ckpt_cost = ckpt_done_at - now
                since_ckpt = 0

    if isinstance(events, (list, tuple)):
        # Sequence fast path: frame boundaries fall out of slicing, so
        # the hot path carries no per-event accumulation loop.
        for start in range(0, len(events), batch_events):
            dispatch(events[start:start + batch_events])
    else:
        buffer = []
        for event in events:
            buffer.append(event)
            if len(buffer) == batch_events:
                dispatch(buffer)
                buffer = []
        if buffer:
            dispatch(buffer)
    wal.eos()
    engine.finish()
    poll_statuses(seq)
    wal.close()


def jsonable_kwargs(kwargs: dict) -> dict:
    """The JSON-safe subset of engine kwargs, for the manifest."""
    return {k: v for k, v in kwargs.items()
            if isinstance(v, (bool, int, float, str, type(None)))}


__all__ = [
    "WalError", "WalRecord", "WalState", "WriteAheadLog",
    "R_META", "R_FRAME", "R_CKPT", "R_STATUS", "R_EOS",
    "scan_wal", "iter_wal_records", "list_segments", "drive_durable",
    "jsonable_kwargs",
]
