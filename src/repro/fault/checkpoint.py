"""Versioned checkpoint envelopes for pipeline state snapshots.

A checkpoint is a self-describing byte string: a magic prefix, a format
version, a *kind* tag naming what was snapshotted (``"pipeline"``,
``"queryrun"``, ``"multiquery"``), a small schema dict used as a
structural guard at restore time, and the pickled state itself.  The
envelope exists so a restore can fail with a precise
:class:`CheckpointError` — wrong magic, unsupported version, kind
mismatch, schema mismatch — instead of unpickling garbage into a live
pipeline.

The payload is a pickle of the live runtime objects (wrappers, region
tables, display trees, shared context).  Pickle memoization preserves
the aliasing the runtime depends on — the display *is* the pipeline
sink, wrappers share one ``Context``, deduplicated queries share one
pipeline — so a restored graph has exactly the object identities of the
original.  Everything reachable from a run is plain Python by
construction (the one historic exception, the fused predicate's lambda
tests, was replaced by picklable callables for exactly this reason).

Checkpoints are process-local and version-locked: they are an IPC and
recovery format for workers of the same interpreter (see
:mod:`repro.parallel.shard`), not a durable cross-host archive format.
DESIGN.md §9 spells out what is and is not covered.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import struct
import sys
from typing import Tuple

MAGIC = b"XFCK"
VERSION = 1

#: Kinds the current code base writes; decode rejects unknown kinds.
KNOWN_KINDS = ("pipeline", "queryrun", "multiquery")

#: Recursion headroom for (un)pickling run state.  Blocking stages
#: (sort, aggregation) retain linked structures whose pickle depth
#: grows with the buffered stream, and the interpreter default of
#: ~1000 frames is exceeded already at benchmark scale 0.1.
_PICKLE_RECURSION_LIMIT = 20000


@contextlib.contextmanager
def _deep_pickle():
    previous = sys.getrecursionlimit()
    if previous < _PICKLE_RECURSION_LIMIT:
        sys.setrecursionlimit(_PICKLE_RECURSION_LIMIT)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


class CheckpointError(ValueError):
    """A checkpoint blob cannot be restored (format or schema mismatch).

    Decode failures carry ``offset`` (the byte position in the blob
    where decoding failed) and ``field`` (which envelope field was
    being read: ``"magic"``, ``"version"``, ``"payload"``, ``"kind"``,
    ``"schema"``), and both appear in the message — a truncated or
    corrupted envelope names the exact spot instead of a generic
    complaint.
    """

    def __init__(self, message: str, offset=None, field=None) -> None:
        self.offset = offset
        self.field = field
        details = []
        if field is not None:
            details.append("field={}".format(field))
        if offset is not None:
            details.append("byte offset {}".format(offset))
        if details:
            message = "{} [{}]".format(message, ", ".join(details))
        super().__init__(message)


def _isolated_dumps(doc: dict) -> bytes:
    """Pickle ``doc`` in a forked child; return the pickle bytes.

    Pickling a live object graph is not free *after* it returns: the
    default ``__reduce_ex__`` reads each instance's ``__dict__``, which
    materializes it and permanently disables CPython's inline-values
    attribute representation on every touched object.  Snapshotting a
    running pipeline this way de-optimizes exactly its hottest objects
    (wrappers, transformers, buffered events) — measured at ~10%
    end-to-end on the query benchmark after a *single* checkpoint.

    A fork gives the child a copy-on-write snapshot of the precise
    state at call time; the de-optimization lands in the child's copy
    and dies with it, while the parent's attribute layout stays
    untouched.  The child streams ``status byte + pickle`` back over a
    pipe and ``os._exit``\\ s without running any inherited cleanup (so
    the parent's buffered file handles are never double-flushed).
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        body = b"\x01unknown failure"
        try:
            os.close(read_fd)
            with _deep_pickle():
                body = b"\x00" + pickle.dumps(
                    doc, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:
            body = b"\x01" + "{}: {}".format(
                type(exc).__name__, exc).encode("utf-8", "replace")
        try:
            with os.fdopen(write_fd, "wb") as fh:
                fh.write(struct.pack("<Q", len(body)))
                fh.write(body)
        finally:
            os._exit(0)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as fh:
        data = fh.read()
    os.waitpid(pid, 0)
    if len(data) < 9 or struct.unpack_from("<Q", data)[0] != len(data) - 8:
        raise CheckpointError(
            "checkpoint snapshot subprocess died mid-write ({} bytes "
            "received)".format(len(data)))
    if data[8] != 0:
        raise CheckpointError(
            "checkpoint state is not picklable: {}".format(
                data[9:].decode("utf-8", "replace")))
    return data[9:]


def _snapshot_in_process() -> bool:
    return not hasattr(os, "fork") \
        or os.environ.get("REPRO_CKPT_INPROC") == "1"


def encode_checkpoint(kind: str, schema: dict, state: object) -> bytes:
    """Wrap ``state`` in a versioned envelope.

    ``schema`` is a small dict of structural facts about the snapshotted
    object (stage class names, query texts, ...).  It is stored next to
    the state and compared by the restoring side before the state is
    touched.

    The pickle itself is taken in a forked child (see
    :func:`_isolated_dumps`) so snapshotting never perturbs the live
    run; set ``REPRO_CKPT_INPROC=1`` to force the in-process path
    (platforms without ``fork``, or debugging).
    """
    if kind not in KNOWN_KINDS:
        raise CheckpointError("unknown checkpoint kind {!r}".format(kind))
    doc = {"kind": kind, "schema": schema, "state": state}
    if not _snapshot_in_process():
        return MAGIC + bytes([VERSION]) + _isolated_dumps(doc)
    try:
        with _deep_pickle():
            payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            "checkpoint state is not picklable: {}: {}".format(
                type(exc).__name__, exc))
    return MAGIC + bytes([VERSION]) + payload


def decode_checkpoint(blob: bytes, kind: str) -> Tuple[dict, object]:
    """Unwrap an envelope; returns ``(schema, state)``.

    Raises :class:`CheckpointError` on anything that is not a valid
    checkpoint of the requested ``kind`` at the current version.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError("checkpoint must be bytes, got {}".format(
            type(blob).__name__), offset=0, field="magic")
    if len(blob) < len(MAGIC):
        raise CheckpointError(
            "not a checkpoint (truncated before the magic: {} of {} "
            "bytes)".format(len(blob), len(MAGIC)),
            offset=len(blob), field="magic")
    if blob[:len(MAGIC)] != MAGIC:
        raise CheckpointError(
            "not a checkpoint (bad magic {!r}, want {!r})".format(
                bytes(blob[:len(MAGIC)]), MAGIC),
            offset=0, field="magic")
    if len(blob) < len(MAGIC) + 1:
        raise CheckpointError(
            "truncated before the version byte",
            offset=len(blob), field="version")
    version = blob[len(MAGIC)]
    if version != VERSION:
        raise CheckpointError(
            "unsupported checkpoint version {} (this build reads {})"
            .format(version, VERSION),
            offset=len(MAGIC), field="version")
    payload_at = len(MAGIC) + 1
    if len(blob) == payload_at:
        raise CheckpointError("truncated before the payload",
                              offset=payload_at, field="payload")
    try:
        with _deep_pickle():
            doc = pickle.loads(bytes(blob[payload_at:]))
    except Exception as exc:
        raise CheckpointError(
            "corrupt checkpoint payload: {}: {}".format(
                type(exc).__name__, exc),
            offset=payload_at, field="payload")
    if not isinstance(doc, dict) or "kind" not in doc:
        raise CheckpointError("corrupt checkpoint payload (no kind)",
                              offset=payload_at, field="kind")
    if doc["kind"] != kind:
        raise CheckpointError(
            "checkpoint kind mismatch: blob holds {!r}, expected {!r}"
            .format(doc["kind"], kind),
            offset=payload_at, field="kind")
    return doc.get("schema") or {}, doc.get("state")


def require_schema(found: dict, expected: dict) -> None:
    """Raise :class:`CheckpointError` unless the schema dicts agree."""
    for key, want in expected.items():
        got = found.get(key)
        if got != want:
            raise CheckpointError(
                "checkpoint schema mismatch on {!r}: blob has {!r}, "
                "restore target has {!r}".format(key, got, want),
                field="schema")
