"""Versioned checkpoint envelopes for pipeline state snapshots.

A checkpoint is a self-describing byte string: a magic prefix, a format
version, a *kind* tag naming what was snapshotted (``"pipeline"``,
``"queryrun"``, ``"multiquery"``), a small schema dict used as a
structural guard at restore time, and the pickled state itself.  The
envelope exists so a restore can fail with a precise
:class:`CheckpointError` — wrong magic, unsupported version, kind
mismatch, schema mismatch — instead of unpickling garbage into a live
pipeline.

The payload is a pickle of the live runtime objects (wrappers, region
tables, display trees, shared context).  Pickle memoization preserves
the aliasing the runtime depends on — the display *is* the pipeline
sink, wrappers share one ``Context``, deduplicated queries share one
pipeline — so a restored graph has exactly the object identities of the
original.  Everything reachable from a run is plain Python by
construction (the one historic exception, the fused predicate's lambda
tests, was replaced by picklable callables for exactly this reason).

Checkpoints are process-local and version-locked: they are an IPC and
recovery format for workers of the same interpreter (see
:mod:`repro.parallel.shard`), not a durable cross-host archive format.
DESIGN.md §9 spells out what is and is not covered.
"""

from __future__ import annotations

import pickle
from typing import Tuple

MAGIC = b"XFCK"
VERSION = 1

#: Kinds the current code base writes; decode rejects unknown kinds.
KNOWN_KINDS = ("pipeline", "queryrun", "multiquery")


class CheckpointError(ValueError):
    """A checkpoint blob cannot be restored (format or schema mismatch)."""


def encode_checkpoint(kind: str, schema: dict, state: object) -> bytes:
    """Wrap ``state`` in a versioned envelope.

    ``schema`` is a small dict of structural facts about the snapshotted
    object (stage class names, query texts, ...).  It is stored next to
    the state and compared by the restoring side before the state is
    touched.
    """
    if kind not in KNOWN_KINDS:
        raise CheckpointError("unknown checkpoint kind {!r}".format(kind))
    try:
        payload = pickle.dumps({"kind": kind, "schema": schema,
                                "state": state},
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            "checkpoint state is not picklable: {}: {}".format(
                type(exc).__name__, exc))
    return MAGIC + bytes([VERSION]) + payload


def decode_checkpoint(blob: bytes, kind: str) -> Tuple[dict, object]:
    """Unwrap an envelope; returns ``(schema, state)``.

    Raises :class:`CheckpointError` on anything that is not a valid
    checkpoint of the requested ``kind`` at the current version.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise CheckpointError("checkpoint must be bytes, got {}".format(
            type(blob).__name__))
    if len(blob) < len(MAGIC) + 1 or blob[:len(MAGIC)] != MAGIC:
        raise CheckpointError("not a checkpoint (bad magic)")
    version = blob[len(MAGIC)]
    if version != VERSION:
        raise CheckpointError(
            "unsupported checkpoint version {} (this build reads {})"
            .format(version, VERSION))
    try:
        doc = pickle.loads(bytes(blob[len(MAGIC) + 1:]))
    except Exception as exc:
        raise CheckpointError("corrupt checkpoint payload: {}: {}".format(
            type(exc).__name__, exc))
    if not isinstance(doc, dict) or "kind" not in doc:
        raise CheckpointError("corrupt checkpoint payload (no kind)")
    if doc["kind"] != kind:
        raise CheckpointError(
            "checkpoint kind mismatch: blob holds {!r}, expected {!r}"
            .format(doc["kind"], kind))
    return doc.get("schema") or {}, doc.get("state")


def require_schema(found: dict, expected: dict) -> None:
    """Raise :class:`CheckpointError` unless the schema dicts agree."""
    for key, want in expected.items():
        got = found.get(key)
        if got != want:
            raise CheckpointError(
                "checkpoint schema mismatch on {!r}: blob has {!r}, "
                "restore target has {!r}".format(key, got, want))
