"""Element construction: ``<tag>{ e }</tag>``.

Two flavours, matching where a constructor sits in a query:

* :class:`StreamConstruct` wraps the *entire* result sequence of an
  expression in one element — the outer ``<books>{ ... }</books>`` of the
  paper's introduction;
* :class:`TupleConstruct` wraps *each FLWOR tuple's* content in its own
  element — the ``<book>{ $b/title, $b/price }</book>`` inside a return
  clause.

Both are streaming (no buffering): the closing tag is emitted when the
wrapped scope ends.  Tuple markers inside a constructed element are erased
(the construction concatenates the tuple contents).

A constructed per-tuple element is itself emitted inside a mutable region
slaved to the tuple's visibility: when an upstream where-clause hides the
tuple's content region, the constructed wrapper element must disappear
with it (and reappear on a retroactive ``show``).  The same applies to
:class:`~repro.operators.functions.LiteralText` items; both share
:class:`TupleRegionMixin`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..events.model import (EE, ES, ET, SE, SS, ST, Event, end_mutable,
                            freeze as freeze_event, hide as hide_event,
                            show as show_event, start_mutable)
from ..core.transformer import Context, State, StateTransformer


class TupleRegionMixin:
    """Per-tuple output region slaved to the input tuple's visibility.

    The operator emits its per-tuple output inside ``sM(out, wid)``; any
    input-side region whose content appears at tuple top level (i.e. a
    where-clause's whole-tuple region) is remembered, and its later
    hide/show is mirrored onto ``wid``.
    """

    def _init_tuple_region(self, seal: bool) -> None:
        self.wid: Optional[int] = None
        self.depth = 0
        self._seal = seal  # retained for introspection; sealing follows
        #                    the source regions' own freezes
        self._region_to_wid: Dict[int, int] = {}
        self._wid_sources: Dict[int, set] = {}
        self._freeze_on_close = False

    def _tuple_region_state(self) -> State:
        return (self.wid, self.depth)

    def _set_tuple_region_state(self, state: State) -> None:
        self.wid, self.depth = state

    def bracket_anchor(self) -> int:
        return self.wid if self.wid is not None else self.output_id

    def _open_tuple_region(self) -> List[Event]:
        self.wid = self.ctx.fresh_id()
        self.depth = 0
        return [start_mutable(self.output_id, self.wid)]

    def _close_tuple_region(self) -> List[Event]:
        wid = self.wid
        self.wid = None
        out = [end_mutable(self.output_id, wid)]
        if self._freeze_on_close:
            self._freeze_on_close = False
            out.append(freeze_event(wid))
        return out

    def _register_content(self, e: Event) -> None:
        """Track element depth; link enclosing input regions to wid."""
        if (self.current_region is not None and self.depth == 0
                and self.wid is not None):
            sources = self._wid_sources.setdefault(self.wid, set())
            for region in self.current_region_chain or \
                    (self.current_region,):
                self._region_to_wid[region] = self.wid
                sources.add(region)
        if e.kind == SE:
            self.depth += 1
        elif e.kind == EE:
            self.depth -= 1

    def on_region_hidden(self, uid: int) -> List[Event]:
        wid = self._region_to_wid.get(uid)
        return [hide_event(wid)] if wid is not None else []

    def on_region_shown(self, uid: int) -> List[Event]:
        wid = self._region_to_wid.get(uid)
        return [show_event(wid)] if wid is not None else []

    def _tuple_region_facts(self, base: dict, notes: str) -> dict:
        base.update(
            state_class="per-region",
            generates_updates=("sM", "hide", "show", "freeze"),
            brackets=(
                {"kind": "sM", "target": self.output_id, "sub": "dynamic",
                 "freeze": "derived", "per": "tuple"},
            ),
            notes=notes,
        )
        return base

    def on_region_frozen(self, uid: int) -> List[Event]:
        # The constructed wrapper seals only once *every* source region
        # it is slaved to has sealed (any live source could still hide
        # the tuple).  A freeze arriving while the tuple region is still
        # open is deferred to the region's close.
        wid = self._region_to_wid.pop(uid, None)
        if wid is None:
            return []
        sources = self._wid_sources.get(wid)
        if sources is not None:
            sources.discard(uid)
            if sources:
                return []
            del self._wid_sources[wid]
        if wid == self.wid:
            self._freeze_on_close = True
            return []
        return [freeze_event(wid)]


class StreamConstruct(StateTransformer):
    """Wrap the whole input stream in one constructed element."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 tag: str) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.tag = tag

    def type_facts(self) -> dict:
        # Emits its wrapper element at stream start regardless of input:
        # the output is never empty.
        return {"kind": "construct", "tag": self.tag, "always": True}

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        out = self.output_id
        if kind == SS:
            return [Event(SS, out), Event(SE, out, tag=self.tag)]
        if kind == ES:
            return [Event(EE, out, tag=self.tag), Event(ES, out)]
        if kind in (ST, ET):
            return []
        return [e.relabel(out)]


class TupleConstruct(TupleRegionMixin, StateTransformer):
    """Wrap each tuple's content in a constructed element.

    The tuple markers are preserved on the output (the constructed
    elements remain one-per-tuple for downstream sorting/concatenation);
    the element itself lives inside a per-tuple mutable region so upstream
    where-decisions can retract it.
    """

    inert = False  # visibility hooks; adjust stays the identity

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 tag: str, seal: bool = True) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.tag = tag
        self._init_tuple_region(seal)

    def static_facts(self) -> dict:
        facts = self._tuple_region_facts(
            super().static_facts(),
            "per-tuple wrapper element in a region slaved to the tuple's "
            "source regions (sealed when they all freeze)")
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        # One wrapper element per tuple: no tuples, no output.
        return {"kind": "construct", "tag": self.tag, "always": False}

    def get_state(self) -> State:
        return self._tuple_region_state()

    def set_state(self, state: State) -> None:
        self._set_tuple_region_state(state)

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        out = self.output_id
        if kind in (SS, ES):
            return [e.relabel(out)]
        if kind == ST:
            opened = self._open_tuple_region()
            return ([e.relabel(out)] + opened
                    + [Event(SE, self.wid, tag=self.tag)])
        if kind == ET:
            closing = [Event(EE, self.wid, tag=self.tag)]
            closing.extend(self._close_tuple_region())
            closing.append(e.relabel(out))
            return closing
        self._register_content(e)
        if self.wid is None:
            return [e.relabel(out)]
        return [e.relabel(self.wid)]
