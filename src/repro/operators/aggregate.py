"""Unblocked aggregation via replace updates (paper Sections III and IV).

Counting is the paper's running example of a blocking operation with
bounded state: instead of waiting for the end of the stream, the operator
emits a mutable region holding ``0`` at stream start and replaces its
content with the new total every time it changes.  The state adjustment
(Section IV) is ``count <- count + (s2.count - s1.count)``; when an update
propagating through the pipeline changes the live total retroactively, the
operator re-emits a corrected replace update (``on_live_adjusted``).

The same machinery supports ``sum``/``avg`` with (total, n) deltas, and
``min``/``max`` with a value-multiset state (a value -> count register):
retracting a value must be able to dethrone the current extremum, which a
scalar state cannot express.  The register costs O(distinct values) —
an extension beyond the paper, which only demonstrates counting.
"""

from __future__ import annotations

from typing import List, Optional

from ..events.model import (CD, EE, ES, ET, SE, SS, ST, Event, cdata,
                            end_mutable, end_replace, start_mutable,
                            start_replace)
from ..core.transformer import Context, State, StateTransformer
from ..core.wrapper import UpdatePolicy

_STRUCTURAL = (ST, ET)


def _aggregate_facts(agg: StateTransformer, state_class: str,
                     notes: str) -> dict:
    """Shared static facts of the continuously-replaced aggregates.

    Every aggregate shows its answer as one mutable region opened at
    stream start and replaced in place on each change; neither the region
    nor its replace substream is ever frozen (the answer stays revocable
    for the whole run).
    """
    facts = StateTransformer.static_facts(agg)
    facts.update(
        paper_blocking=True,
        state_class=state_class,
        generates_updates=("sM", "sR"),
        brackets=(
            {"kind": "sM", "target": agg.output_id, "sub": agg.region_id,
             "freeze": "never", "per": "stream"},
            {"kind": "sR", "target": agg.region_id, "sub": agg.replace_id,
             "freeze": "never", "per": "item"},
        ),
        notes=notes,
    )
    # Aggregates read their input items (boundaries and, for numeric
    # aggregates, text) — keep the consumed subtrees whole.
    facts["projection"] = {"kind": "content"}
    return facts


class CountItems(StateTransformer):
    """``count(e)``: continuously displayed count of top-level items.

    Counts the top-level items of the input forest (elements and bare
    top-level cD events).  Non-inert; adjustable per Section IV.
    """

    inert = False
    suppress_region_output = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.count = 0
        self.depth = 0
        self.region_id = ctx.fresh_id()   # the paper's nid
        self.replace_id = ctx.fresh_id()  # the paper's rid
        self._started = False

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.CONSUME

    def static_facts(self) -> dict:
        return _aggregate_facts(self, "constant",
                                "count register adjusted by deltas")

    def type_facts(self) -> dict:
        # Emits "0" at stream start even for empty input: never empty.
        return {"kind": "aggregate"}

    def get_state(self) -> State:
        return (self.count, self.depth)

    def set_state(self, state: State) -> None:
        self.count, self.depth = state

    def _emit_value(self) -> List[Event]:
        return [start_replace(self.region_id, self.replace_id),
                cdata(self.replace_id, str(self.count)),
                end_replace(self.region_id, self.replace_id)]

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == SS:
            self._started = True
            return [Event(SS, self.output_id),
                    start_mutable(self.output_id, self.region_id),
                    cdata(self.region_id, "0"),
                    end_mutable(self.output_id, self.region_id)]
        if kind == ES:
            return [Event(ES, self.output_id)]
        if kind in _STRUCTURAL:
            return []
        if kind == SE:
            self.depth += 1
            return []
        if kind == EE:
            self.depth -= 1
            if self.depth == 0:
                self.count += 1
                return self._emit_value()
            return []
        if self.depth == 0:  # bare top-level cD counts as an item
            self.count += 1
            return self._emit_value()
        return []

    def adjust(self, state: State, s1: State, s2: State) -> State:
        count, depth = state
        return (count + (s2[0] - s1[0]), depth)

    def on_live_adjusted(self, old: State, new: State) -> List[Event]:
        if old[0] == new[0]:
            return []
        return self._emit_value()


class NumericAggregate(StateTransformer):
    """``sum()`` / ``avg()`` over the numeric string values of items.

    Each top-level item's string value is parsed as a number (items whose
    value is not numeric contribute 0, with a parallel valid-count so
    ``avg`` stays correct).  Like count, the result is shown as a mutable
    region whose content is continuously replaced, and adjustment applies
    the (sum, n) delta.
    """

    inert = False
    suppress_region_output = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 op: str = "sum") -> None:
        if op not in ("sum", "avg"):
            raise ValueError("unsupported aggregate {!r}".format(op))
        super().__init__(ctx, (input_id,), output_id)
        self.op = op
        self.total = 0.0
        self.n = 0
        self.depth = 0
        self.parts: tuple = ()
        self.region_id = ctx.fresh_id()
        self.replace_id = ctx.fresh_id()

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.CONSUME

    def static_facts(self) -> dict:
        return _aggregate_facts(self, "buffering",
                                "(total, n) register plus the current "
                                "item's text buffer")

    def type_facts(self) -> dict:
        return {"kind": "aggregate"}

    def get_state(self) -> State:
        return (self.total, self.n, self.depth, self.parts)

    def set_state(self, state: State) -> None:
        self.total, self.n, self.depth, self.parts = state

    def _value(self) -> str:
        if self.op == "sum":
            return _format_number(self.total)
        if self.n == 0:
            return ""
        return _format_number(self.total / self.n)

    def _emit_value(self) -> List[Event]:
        return [start_replace(self.region_id, self.replace_id),
                cdata(self.replace_id, self._value()),
                end_replace(self.region_id, self.replace_id)]

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == SS:
            return [Event(SS, self.output_id),
                    start_mutable(self.output_id, self.region_id),
                    cdata(self.region_id, self._value()),
                    end_mutable(self.output_id, self.region_id)]
        if kind == ES:
            return [Event(ES, self.output_id)]
        if kind in _STRUCTURAL:
            return []
        if kind == SE:
            self.depth += 1
            if self.depth == 1:
                self.parts = ()
            return []
        if kind == EE:
            self.depth -= 1
            if self.depth == 0:
                return self._accumulate("".join(self.parts))
            return []
        if self.depth == 0:
            return self._accumulate(e.text or "")
        self.parts = self.parts + (e.text or "",)
        return []

    def _accumulate(self, text: str) -> List[Event]:
        value = _parse_number(text)
        self.n += 1
        if value is not None:
            self.total += value
        return self._emit_value()

    def adjust(self, state: State, s1: State, s2: State) -> State:
        total, n, depth, parts = state
        return (total + (s2[0] - s1[0]), n + (s2[1] - s1[1]), depth, parts)

    def on_live_adjusted(self, old: State, new: State) -> List[Event]:
        if old[0] == new[0] and old[1] == new[1]:
            return []
        return self._emit_value()


def _parse_number(text: str) -> Optional[float]:
    try:
        return float(text.strip())
    except ValueError:
        return None


def _format_number(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return repr(x)


class MinMaxAggregate(StateTransformer):
    """``min()`` / ``max()`` over the numeric string values of items.

    The state is a value -> multiplicity register, so updates that remove
    the current extremum still adjust exactly (the scalar "running min"
    cannot).  Non-numeric items are ignored.
    """

    inert = False
    suppress_region_output = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 op: str = "min") -> None:
        if op not in ("min", "max"):
            raise ValueError("unsupported aggregate {!r}".format(op))
        super().__init__(ctx, (input_id,), output_id)
        self.op = op
        self.counts: tuple = ()  # sorted ((value, multiplicity), ...)
        self.depth = 0
        self.parts: tuple = ()
        self.region_id = ctx.fresh_id()
        self.replace_id = ctx.fresh_id()

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.CONSUME

    def static_facts(self) -> dict:
        return _aggregate_facts(self, "unbounded",
                                "value -> multiplicity register, "
                                "O(distinct values)")

    def type_facts(self) -> dict:
        return {"kind": "aggregate"}

    def get_state(self) -> State:
        return (self.counts, self.depth, self.parts)

    def set_state(self, state: State) -> None:
        self.counts, self.depth, self.parts = state

    def _value(self) -> str:
        if not self.counts:
            return ""
        pick = self.counts[0][0] if self.op == "min" else \
            self.counts[-1][0]
        return _format_number(pick)

    def _emit_value(self) -> List[Event]:
        return [start_replace(self.region_id, self.replace_id),
                cdata(self.replace_id, self._value()),
                end_replace(self.region_id, self.replace_id)]

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == SS:
            return [Event(SS, self.output_id),
                    start_mutable(self.output_id, self.region_id),
                    cdata(self.region_id, self._value()),
                    end_mutable(self.output_id, self.region_id)]
        if kind == ES:
            return [Event(ES, self.output_id)]
        if kind in _STRUCTURAL:
            return []
        if kind == SE:
            self.depth += 1
            if self.depth == 1:
                self.parts = ()
            return []
        if kind == EE:
            self.depth -= 1
            if self.depth == 0:
                return self._accumulate("".join(self.parts))
            return []
        if self.depth == 0:
            return self._accumulate(e.text or "")
        self.parts = self.parts + (e.text or "",)
        return []

    def _accumulate(self, text: str) -> List[Event]:
        value = _parse_number(text)
        if value is None:
            return []
        before = self._value()
        self.counts = _bump(self.counts, value, +1)
        if self._value() == before:
            return []  # the extremum did not move: nothing to replace
        return self._emit_value()

    def adjust(self, state: State, s1: State, s2: State) -> State:
        counts, depth, parts = state
        removed = dict(s1[0])
        for value, n in s2[0]:
            removed[value] = removed.get(value, 0) - n
        for value, delta in removed.items():
            if delta:
                counts = _bump(counts, value, -delta)
        return (counts, depth, parts)

    def on_live_adjusted(self, old: State, new: State) -> List[Event]:
        if old[0] == new[0]:
            return []
        return self._emit_value()


def _bump(counts: tuple, value: float, delta: int) -> tuple:
    """Adjust one value's multiplicity in a sorted count register."""
    reg = dict(counts)
    n = reg.get(value, 0) + delta
    if n > 0:
        reg[value] = n
    else:
        reg.pop(value, None)
    return tuple(sorted(reg.items()))
