"""Forward navigation steps: child (``/tag``, ``/*``) and ``text()``.

The input of a step is a *forest stream*: a sequence of top-level XML
elements (each at depth 0) interspersed with tuple markers.  ``/tag``
selects the depth-1 children with a matching tag and emits each selected
child as a new top-level element of the output stream — the paper's /tag
state modifier, with two small changes: output events are relabeled to the
operator's output stream number (pipelines here keep substreams distinct),
and the wildcard ``/*`` is the same operator with ``tag=None``.

These transformers are **inert**: for any well-formed input sequence the
(depth, passing) state returns to its initial value, so no adjustment code
is needed and update regions cost nothing beyond the generic wrapper.
"""

from __future__ import annotations

from typing import List, Optional

from ..events.model import (CD, EE, ES, ET, SE, SS, ST, Event)
from ..core.transformer import Context, State, StateTransformer

_STRUCTURAL = (SS, ES, ST, ET)


class ChildStep(StateTransformer):
    """XPath child step ``/tag`` (or ``/*`` when ``tag`` is None)."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 tag: Optional[str]) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.tag = tag
        self.depth = 0
        self.passing = False

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts["projection"] = {"kind": "step", "axis": "child",
                               "tag": self.tag}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "step", "axis": "child", "tag": self.tag}

    def get_state(self) -> State:
        return (self.depth, self.passing)

    def set_state(self, state: State) -> None:
        self.depth, self.passing = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        out = self.output_id
        if kind in _STRUCTURAL:
            return [e.relabel(out)]
        if kind == SE:
            if (self.depth == 1 and not self.passing
                    and (self.tag is None or e.tag == self.tag)):
                self.passing = True
            self.depth += 1
            return [e.relabel(out)] if self.passing else []
        if kind == EE:
            self.depth -= 1
            if self.passing:
                if self.depth == 1:
                    self.passing = False
                return [e.relabel(out)]
            return []
        # cD
        return [e.relabel(out)] if self.passing else []

    def __repr__(self) -> str:
        return "ChildStep(/{}: {} -> {})".format(
            self.tag if self.tag is not None else "*",
            self.input_ids[0], self.output_id)


class TextStep(StateTransformer):
    """XPath ``text()`` step: text children of each top-level element."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.depth = 0

    def static_facts(self) -> dict:
        facts = super().static_facts()
        # "content": the text() step reads character data inside its
        # input items, so those items' subtrees must be kept whole.
        facts["projection"] = {"kind": "content"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "text"}

    def get_state(self) -> State:
        return (self.depth,)

    def set_state(self, state: State) -> None:
        (self.depth,) = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in _STRUCTURAL:
            return [e.relabel(self.output_id)]
        if kind == SE:
            self.depth += 1
            return []
        if kind == EE:
            self.depth -= 1
            return []
        if self.depth == 1:  # cD directly inside a top-level element
            return [e.relabel(self.output_id)]
        return []


class SelfStep(StateTransformer):
    """Identity navigation: forward the forest, relabeled to the output."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "copy"}

    def process(self, e: Event) -> List[Event]:
        return [e.relabel(self.output_id)]


class StringValue(StateTransformer):
    """Collapse each top-level item to one cD holding its string value.

    Used to feed comparisons and sort keys: the XPath string-value of an
    element is the concatenation of its descendant text.  Emits exactly one
    cD per top-level item (elements *or* bare top-level cD events), which
    is what the predicate's condition handler and the sort-key stream
    expect.  Bounded state: the accumulating buffer of the current item.
    """

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.depth = 0
        self.parts: tuple = ()

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(state_class="buffering",
                     notes="accumulates the current item's text")
        facts["projection"] = {"kind": "content"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "text"}

    def get_state(self) -> State:
        return (self.depth, self.parts)

    def set_state(self, state: State) -> None:
        self.depth, self.parts = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in _STRUCTURAL:
            return [e.relabel(self.output_id)]
        if kind == SE:
            self.depth += 1
            if self.depth == 1:
                self.parts = ()
            return []
        if kind == EE:
            self.depth -= 1
            if self.depth == 0:
                text = "".join(self.parts)
                self.parts = ()
                return [Event(CD, self.output_id, text=text, oid=e.oid)]
            return []
        # cD
        if self.depth == 0:
            return [e.relabel(self.output_id)]
        self.parts = self.parts + (e.text or "",)
        return []
