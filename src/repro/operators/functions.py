"""Value-level operators: comparisons, contains(), existence flags.

These feed predicate and where-clause conditions.  By convention a
condition stream delivers one top-level cD per evaluated item whose text
is non-empty iff the condition holds (the paper's F2 treats a non-empty
top-level cData as "true") — so a comparison emits ``"1"`` or ``""``.
All of them are inert.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..events.model import CD, EE, ES, ET, SE, SS, ST, Event
from ..core.transformer import Context, State, StateTransformer
from .construct import TupleRegionMixin

_STRUCTURAL = (SS, ES, ST, ET)

#: Comparison operators on (string-value, literal) pairs.  Comparisons are
#: numeric when both sides parse as numbers, else string-based, matching
#: XPath 1.0 general comparison pragmatics for the supported queries.
_OPS: dict = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: _num_cmp(a, b, lambda x, y: x < y),
    "<=": lambda a, b: _num_cmp(a, b, lambda x, y: x <= y),
    ">": lambda a, b: _num_cmp(a, b, lambda x, y: x > y),
    ">=": lambda a, b: _num_cmp(a, b, lambda x, y: x >= y),
}


def _num_cmp(a: str, b: str, op: Callable[[float, float], bool]) -> bool:
    try:
        return op(float(a), float(b))
    except ValueError:
        return op(a, b)  # type: ignore[arg-type]


def compare_values(op: str, left: str, right: str) -> bool:
    """Evaluate one comparison; shared with the naive baseline."""
    if op == "=" or op == "!=":
        try:
            result = float(left) == float(right)
        except ValueError:
            result = left == right
        return result if op == "=" else not result
    return _OPS[op](left, right)


class CompareLiteral(StateTransformer):
    """Emit "1"/"" per incoming top-level cD, comparing with a literal.

    Input: a stream of top-level cD items (e.g. from
    :class:`~repro.operators.axes.StringValue`).  Output: one flag cD per
    item.
    """

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 op: str, literal: str) -> None:
        if op not in _OPS:
            raise ValueError("unsupported comparison {!r}".format(op))
        super().__init__(ctx, (input_id,), output_id)
        self.op = op
        self.literal = literal
        self.depth = 0

    def type_facts(self) -> dict:
        return {"kind": "flag"}

    def get_state(self) -> State:
        return (self.depth,)

    def set_state(self, state: State) -> None:
        (self.depth,) = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in _STRUCTURAL:
            return [e.relabel(self.output_id)]
        if kind == SE:
            self.depth += 1
            return []
        if kind == EE:
            self.depth -= 1
            return []
        if self.depth > 0:
            return []
        flag = "1" if compare_values(self.op, e.text or "",
                                     self.literal) else ""
        return [Event(CD, self.output_id, text=flag)]


class ContainsLiteral(StateTransformer):
    """``contains(x, "lit")`` on top-level cD string values."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 literal: str) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.literal = literal
        self.depth = 0

    def type_facts(self) -> dict:
        return {"kind": "flag"}

    def get_state(self) -> State:
        return (self.depth,)

    def set_state(self, state: State) -> None:
        (self.depth,) = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in _STRUCTURAL:
            return [e.relabel(self.output_id)]
        if kind == SE:
            self.depth += 1
            return []
        if kind == EE:
            self.depth -= 1
            return []
        if self.depth > 0:
            return []
        flag = "1" if self.literal in (e.text or "") else ""
        return [Event(CD, self.output_id, text=flag)]


class ExistsFlag(StateTransformer):
    """Existence test: emit "1" for every top-level item of the input.

    Used for bare-path predicates like ``//item[payment]``: the predicate
    holds when the path produced at least one node.
    """

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.depth = 0

    def type_facts(self) -> dict:
        return {"kind": "flag"}

    def get_state(self) -> State:
        return (self.depth,)

    def set_state(self, state: State) -> None:
        (self.depth,) = state

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in _STRUCTURAL:
            return [e.relabel(self.output_id)]
        if kind == SE:
            self.depth += 1
            if self.depth == 1:
                return [Event(CD, self.output_id, text="1")]
            return []
        if kind == EE:
            self.depth -= 1
            return []
        if self.depth == 0:
            return [Event(CD, self.output_id, text="1")]
        return []


class LiteralText(TupleRegionMixin, StateTransformer):
    """Emit a constant cD once per tuple of the pacing stream.

    Implements string literals in FLWOR return clauses (e.g. the ``": "``
    of query Q9): for every tuple of the input stream, one literal cD is
    produced in the output substream inside a per-tuple mutable region, so
    that when an upstream where-clause hides the tuple the literal
    disappears with it (see
    :class:`~repro.operators.construct.TupleRegionMixin`).
    """

    inert = False  # visibility hooks; adjust stays the identity

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 text: str, seal: bool = True) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.text = text
        self._init_tuple_region(seal)

    def static_facts(self) -> dict:
        facts = self._tuple_region_facts(
            super().static_facts(),
            "per-tuple literal in a region slaved to the tuple's source "
            "regions (sealed when they all freeze)")
        # "content": pacing comes from the tuple stream itself, so its
        # items must survive projection even when nothing else reads them
        # (a constant-return FLWOR still emits one literal per tuple).
        facts["projection"] = {"kind": "content"}
        return facts

    def type_facts(self) -> dict:
        # One literal cD per tuple: no tuples, no output.
        return {"kind": "literal"}

    def get_state(self) -> State:
        return self._tuple_region_state()

    def set_state(self, state: State) -> None:
        self._set_tuple_region_state(state)

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == ST:
            opened = self._open_tuple_region()
            return ([e.relabel(self.output_id)] + opened
                    + [Event(CD, self.wid, text=self.text)])
        if kind == ET:
            closing = self._close_tuple_region()
            closing.append(e.relabel(self.output_id))
            return closing
        if kind in (SS, ES):
            return [e.relabel(self.output_id)]
        self._register_content(e)
        return []
