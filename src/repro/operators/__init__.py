"""XQuery stream operators (one state transformer per operation)."""

from .aggregate import CountItems, MinMaxAggregate, NumericAggregate
from .axes import ChildStep, SelfStep, StringValue, TextStep
from .backward import AncestorJoin
from .clone import Tee
from .concat import Concat
from .construct import StreamConstruct, TupleConstruct
from .descendant import DescendantStep
from .flwor import ForTuples, TupleStrip
from .functions import (CompareLiteral, ContainsLiteral, ExistsFlag,
                        LiteralText, compare_values)
from .predicate import (SCOPE_ITEM, SCOPE_TUPLE, FusedCondition,
                        InlinePipeline, Predicate, make_condition)
from .sorting import SortTuples, sort_key

__all__ = [
    "ChildStep", "TextStep", "SelfStep", "StringValue",
    "DescendantStep",
    "Predicate", "InlinePipeline", "FusedCondition", "make_condition",
    "SCOPE_ITEM", "SCOPE_TUPLE",
    "CompareLiteral", "ContainsLiteral", "ExistsFlag", "LiteralText",
    "compare_values",
    "Concat", "SortTuples", "sort_key",
    "CountItems", "NumericAggregate", "MinMaxAggregate",
    "AncestorJoin", "Tee",
    "ForTuples", "TupleStrip",
    "StreamConstruct", "TupleConstruct",
]
