"""General XPath predicates ``e1[e2]`` and FLWOR where-clauses (§VI-B).

A naive predicate buffers each candidate item until the condition is
known — blocking and unbounded, and hopeless under updates (any item might
become true later).  The paper's operator instead emits every item
*immediately*, wrapped in a mutable region, and controls its visibility
retroactively:

* the item passes optimistically; at its end the operator emits
  ``hide(nid)`` when the condition is (currently) false;
* when the condition's truth is *certain* (derived from fixed content —
  here: content outside any mutable region), the decision is sealed with
  ``freeze(nid)``, which lets every downstream stage and the display drop
  all state for the item — the Section V mutability analysis;
* otherwise an ``outcome`` counter records how many revocable condition
  hits exist, and later updates flip visibility through retroactive
  ``show``/``hide`` events emitted by the adjustment machinery.

The condition pipeline runs *inline*: its (inert) stages are part of the
predicate's own state, so the generic wrapper's per-region state copies
automatically carry the condition evaluation into replacements — an update
to a value the condition reads adjusts ``outcome`` and re-decides
visibility, with no operator-specific update code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..events.model import (CD, EE, ES, ET, SE, SS, ST, Event,
                            end_mutable, freeze as freeze_event,
                            hide as hide_event, show as show_event,
                            start_mutable)
from ..core.transformer import Context, State, StateTransformer
from .axes import ChildStep, StringValue
from .functions import (CompareLiteral, ContainsLiteral, ExistsFlag,
                        compare_values)

_STRUCTURAL = (SS, ES, ST, ET)

#: Predicate scopes: per top-level element (XPath predicate) or per FLWOR
#: tuple (where clause).
SCOPE_ITEM = "item"
SCOPE_TUPLE = "tuple"


class InlinePipeline:
    """A chain of inert transformers evaluated inside another operator.

    The owner feeds it plain events relabeled to ``input_id``; events the
    chain emits on ``output_id`` are returned.  The combined stage states
    are exposed for the owner's get_state/set_state, so region-state
    copying by the update wrapper extends into the condition evaluation.
    """

    def __init__(self, stages: Sequence[StateTransformer], input_id: int,
                 output_id: int) -> None:
        for stage in stages:
            if not stage.inert:
                raise ValueError(
                    "inline condition pipelines must be inert; got {!r}"
                    .format(stage))
            if not stage.passes_foreign:
                raise ValueError(
                    "inline condition stages must pass foreign events "
                    "through unchanged; got {!r}".format(stage))
        self.stages = list(stages)
        self._tail = self.stages[1:]
        self.input_id = input_id
        self.output_id = output_id
        self.initial = self.get_state()

    def feed(self, e: Event) -> List[Event]:
        batch = [e]
        for stage in self.stages:
            nxt: List[Event] = []
            ids = stage.input_ids
            for ev in batch:
                if ev.id in ids:
                    nxt.extend(stage.process(ev))
                else:
                    nxt.extend(stage.on_other(ev))
            if not nxt:
                return []
            batch = nxt
        return [ev for ev in batch if ev.id == self.output_id]

    def feed_input(self, e: Event) -> List[Event]:
        """Feed one event already known to be the chain's input.

        Equivalent to ``feed(e.relabel(self.input_id))`` without allocating
        the relabeled copy: the first stage processes ``e`` directly (none
        of the navigation operators read ``e.id``), and later stages pass
        foreign events through unchanged (the ``passes_foreign`` contract
        checked at construction).
        """
        batch = self.stages[0].process(e)
        if not batch:
            return []
        for stage in self._tail:
            ids = stage.input_ids
            nxt: List[Event] = []
            for ev in batch:
                if ev.id in ids:
                    nxt.extend(stage.process(ev))
                else:
                    nxt.append(ev)
            if not nxt:
                return []
            batch = nxt
        out = self.output_id
        return [ev for ev in batch if ev.id == out]

    def get_state(self) -> Tuple:
        # tuple([listcomp]) beats tuple(genexpr) in CPython; this runs on
        # every wrapper state-residency switch.
        return tuple([stage.get_state() for stage in self.stages])

    def set_state(self, state: Tuple) -> None:
        for stage, s in zip(self.stages, state):
            stage.set_state(s)

    def reset(self) -> None:
        self.set_state(self.initial)


class FusedCondition:
    """The common condition shapes collapsed into one flat state machine.

    ``[ChildStep(tag) -> StringValue -> CompareLiteral/ContainsLiteral]``
    and ``[ChildStep(tag) -> ExistsFlag]`` cover every benchmark condition
    (``[location="Albania"]``, ``contains(author, "Smith")``, ...).  Run
    as three chained transformers they rebuild three nested state tuples
    on every wrapper residency switch and cross two call layers per item
    event; fused, the state is one flat ``(depth, collecting, parts)``
    triple and an item event is a single call.

    Event-for-event equivalent to the unfused chain: the flag cD is
    emitted while processing the matching child's end tag (where
    StringValue completes the string value) — or its start tag for the
    existence test (where ExistsFlag fires) — so the predicate reads the
    same ``region_mutable`` fixedness context in both forms.  Structural
    events (sS/eS/sT/eT) are dropped rather than relabeled through: the
    predicate's F2 only reads cD flags.
    """

    __slots__ = ("stages", "input_id", "output_id", "tag", "test",
                 "exists", "depth", "collecting", "parts", "initial")

    def __init__(self, stages: Sequence[StateTransformer], input_id: int,
                 output_id: int, tag: Optional[str], test, exists: bool
                 ) -> None:
        self.stages = list(stages)  # the fused chain, kept for inspection
        self.input_id = input_id
        self.output_id = output_id
        self.tag = tag
        self.test = test            # str -> bool (None for exists)
        self.exists = exists
        self.depth = 0
        self.collecting = False
        self.parts: Tuple = ()
        self.initial = (0, False, ())

    def feed_input(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == SE:
            d = self.depth
            self.depth = d + 1
            if d == 1 and not self.collecting and (
                    self.tag is None or e.tag == self.tag):
                self.collecting = True
                self.parts = ()
                if self.exists:
                    return [Event(CD, self.output_id, text="1")]
            return []
        if kind == EE:
            d = self.depth - 1
            self.depth = d
            if self.collecting and d == 1:
                self.collecting = False
                if self.exists:
                    return []
                flag = "1" if self.test("".join(self.parts)) else ""
                return [Event(CD, self.output_id, text=flag)]
            return []
        if kind == CD:
            if self.collecting and not self.exists:
                self.parts = self.parts + (e.text or "",)
            return []
        return []

    def feed(self, e: Event) -> List[Event]:
        if e.id == self.input_id:
            return self.feed_input(e)
        return [e]

    def get_state(self) -> Tuple:
        return (self.depth, self.collecting, self.parts)

    def set_state(self, state: Tuple) -> None:
        self.depth, self.collecting, self.parts = state

    def reset(self) -> None:
        self.depth, self.collecting, self.parts = self.initial

    def __repr__(self) -> str:
        return "FusedCondition(/{}{}, {} -> {})".format(
            self.tag if self.tag is not None else "*",
            " exists" if self.exists else " test",
            self.input_id, self.output_id)


class _CompareTest:
    """Picklable ``str -> bool`` for :class:`FusedCondition`.

    A plain closure would tie the condition (and with it every live
    pipeline that embeds one) to the enclosing frame, making the whole
    run graph unpicklable — which the checkpoint layer
    (:mod:`repro.fault.checkpoint`) depends on.
    """

    __slots__ = ("op", "literal")

    def __init__(self, op: str, literal) -> None:
        self.op = op
        self.literal = literal

    def __call__(self, s: str) -> bool:
        return compare_values(self.op, s, self.literal)


class _ContainsTest:
    """Picklable ``str -> bool`` substring test (see :class:`_CompareTest`)."""

    __slots__ = ("literal",)

    def __init__(self, literal: str) -> None:
        self.literal = literal

    def __call__(self, s: str) -> bool:
        return self.literal in s


def make_condition(stages: Sequence[StateTransformer], input_id: int,
                   output_id: int):
    """Build a condition evaluator, fusing the common shapes.

    Falls back to the generic :class:`InlinePipeline` whenever the stage
    list is not one of the recognized patterns, so arbitrary condition
    paths keep working unchanged.
    """
    stages = list(stages)
    if (stages and type(stages[0]) is ChildStep
            and stages[0].input_ids == (input_id,)):
        child = stages[0]
        if (len(stages) == 3 and type(stages[1]) is StringValue
                and stages[1].input_ids == (child.output_id,)
                and stages[2].input_ids == (stages[1].output_id,)
                and stages[2].output_id == output_id):
            tail = stages[2]
            if type(tail) is CompareLiteral:
                return FusedCondition(
                    stages, input_id, output_id, child.tag,
                    _CompareTest(tail.op, tail.literal), False)
            if type(tail) is ContainsLiteral:
                return FusedCondition(
                    stages, input_id, output_id, child.tag,
                    _ContainsTest(tail.literal), False)
        if (len(stages) == 2 and type(stages[1]) is ExistsFlag
                and stages[1].input_ids == (child.output_id,)
                and stages[1].output_id == output_id):
            return FusedCondition(stages, input_id, output_id, child.tag,
                                  None, True)
    return InlinePipeline(stages, input_id, output_id)


class Predicate(StateTransformer):
    """``e1[e2]`` / where-clause over the ``input_id`` forest stream.

    ``condition`` may be a single :class:`InlinePipeline` or a sequence of
    them combined with ``combine`` ("and"/"or") — the engine's boolean
    conditions.  Each conjunct keeps its own (outcome, fixed_true,
    fixed_false) triple; visibility and sealing combine per the operator.
    """

    inert = False

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 condition, scope: str = SCOPE_ITEM,
                 assume_fixed: bool = False,
                 combine: str = "and") -> None:
        if scope not in (SCOPE_ITEM, SCOPE_TUPLE):
            raise ValueError("unknown predicate scope {!r}".format(scope))
        if combine not in ("and", "or"):
            raise ValueError("unknown combiner {!r}".format(combine))
        super().__init__(ctx, (input_id,), output_id)
        if isinstance(condition, InlinePipeline):
            condition = [condition]
        self.conditions: List[InlinePipeline] = list(condition)
        self.combine = combine
        self.scope = scope
        #: Treat every condition value as fixed even when it arrives inside
        #: a generated (already sealed) update region — set by the compiler
        #: when the source embeds no updates, enabling Section V pruning.
        self.assume_fixed = assume_fixed
        # Live state (cloned per region by the wrapper):
        self.depth = 0
        self.nid: Optional[int] = None   # current item's output region
        #: One (outcome, fixed_true, fixed_false) triple per conjunct.
        self.flags: Tuple = tuple((0, False, True)
                                  for _ in self.conditions)
        #: Authoritative end-of-item flags for revocable (unsealed) items:
        #: completed update transitions merge their deltas here, and the
        #: retroactive show/hide decision compares visibility before and
        #: after (an item's visibility may depend on conjuncts that
        #: resolved *after* the updated region closed).  Instance-level
        #: registers, like the backward join's: they evolve with update
        #: arrival order, not with state residency.
        self._item_flags: Dict[int, Tuple] = {}

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(
            state_class="constant" if self.assume_fixed else "per-region",
            generates_updates=(("sM", "freeze") if self.assume_fixed
                               else ("sM", "hide", "show", "freeze")),
            brackets=(
                {"kind": "sM", "target": self.output_id, "sub": "dynamic",
                 "freeze": "always" if self.assume_fixed else "conditional",
                 "per": "item"},
            ),
            notes="decisions sealed at item end (fixed source)"
                  if self.assume_fixed else
                  "revocable decisions: per-item flags retained until "
                  "frozen",
        )
        # "content": the inline condition pipelines navigate within each
        # item, so whole item subtrees must survive projection.
        facts["projection"] = {"kind": "content"}
        return facts

    def type_facts(self) -> dict:
        # The checker walks self.conditions to type the inline chains:
        # a conjunct whose chain is provably empty can never flag true.
        return {"kind": "filter", "combine": self.combine}

    # -- state plumbing --------------------------------------------------------

    def get_state(self) -> State:
        conds = self.conditions
        if len(conds) == 1:  # single-conjunct fast path (the common case)
            cs: tuple = (conds[0].get_state(),)
        else:
            cs = tuple([c.get_state() for c in conds])
        return (self.depth, self.nid, self.flags, cs)

    def set_state(self, state: State) -> None:
        self.depth, self.nid, self.flags, cond_states = state
        conds = self.conditions
        if len(conds) == 1:
            conds[0].set_state(cond_states[0])
            return
        for cond, cs in zip(conds, cond_states):
            cond.set_state(cs)

    def bracket_anchor(self) -> int:
        return self.nid if self.nid is not None else self.output_id

    # -- condition intake (the paper's F2, one per conjunct) --------------------

    def _feed_condition(self, e: Event) -> None:
        new_flags = None
        conditions = self.conditions
        for idx in range(len(conditions)):
            outs = conditions[idx].feed_input(e)
            if not outs:
                # No condition output: this conjunct's triple is unchanged,
                # so the flags tuple need not be rebuilt for it.
                continue
            fixed = self.assume_fixed or not self.region_mutable
            if new_flags is None:
                new_flags = list(self.flags)
            outcome, ft, ff = new_flags[idx]
            for out in outs:
                if out.kind != CD:
                    continue
                text = out.text or ""
                ff = ff and text == "" and fixed
                if text != "":
                    if fixed:
                        ft = True
                    else:
                        outcome += 1
            new_flags[idx] = (outcome, ft, ff)
        if new_flags is not None:
            self.flags = tuple(new_flags)

    # -- decision combination ------------------------------------------------------

    @staticmethod
    def _truth(flag) -> bool:
        outcome, ft, _ = flag
        return ft or outcome > 0

    def _visible_flags(self, flags) -> bool:
        if self.combine == "and":
            return all(self._truth(f) for f in flags)
        return any(self._truth(f) for f in flags)

    def _sealed_true(self, flags) -> bool:
        if self.combine == "and":
            return all(f[1] for f in flags)
        return any(f[1] for f in flags)

    def _sealed_false(self, flags) -> bool:
        if self.combine == "and":
            return any(f[2] for f in flags)
        return all(f[2] for f in flags)

    # -- item lifecycle -----------------------------------------------------------

    def _begin_item(self) -> List[Event]:
        self.nid = self.ctx.fresh_id()
        self.flags = tuple((0, False, True) for _ in self.conditions)
        for cond in self.conditions:
            cond.reset()
        return [start_mutable(self.output_id, self.nid)]

    def _end_item(self) -> List[Event]:
        nid = self.nid
        self.nid = None
        out: List[Event] = [end_mutable(self.output_id, nid)]
        if self._sealed_true(self.flags):
            out.append(freeze_event(nid))
        elif self._visible_flags(self.flags):
            self._item_flags[nid] = self.flags  # shown, but revocable
        elif self._sealed_false(self.flags):
            out.append(hide_event(nid))
            out.append(freeze_event(nid))
        else:
            out.append(hide_event(nid))
            self._item_flags[nid] = self.flags
        return out

    # -- the state modifier F1 -------------------------------------------------------

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if self.scope == SCOPE_TUPLE:
            if kind == ST:
                return [e.relabel(self.output_id)] + self._begin_item()
            if kind == ET:
                return self._end_item() + [e.relabel(self.output_id)]
            if kind in (SS, ES):
                return [e.relabel(self.output_id)]
        else:
            if kind in _STRUCTURAL:
                return [e.relabel(self.output_id)]
        out: List[Event] = []
        if kind == SE:
            if self.depth == 0 and self.nid is None:
                out.extend(self._begin_item())
            self.depth += 1
            out.append(e.relabel(self.nid))
            self._feed_condition(e)
            return out
        if kind == EE:
            self.depth -= 1
            out.append(e.relabel(self.nid))
            self._feed_condition(e)
            if self.depth == 0 and self.scope == SCOPE_ITEM:
                out.extend(self._end_item())
            return out
        # cD
        if self.depth == 0 and self.nid is None:
            # A bare top-level text item is a one-event item of its own.
            out.extend(self._begin_item())
            out.append(e.relabel(self.nid))
            self._feed_condition(e)
            out.extend(self._end_item())
            return out
        out.append(e.relabel(self.nid))
        self._feed_condition(e)
        return out

    # -- update adjustment --------------------------------------------------------------

    def _visible(self, state: State) -> bool:
        return self._visible_flags(state[2])

    def adjust(self, state: State, s1: State, s2: State) -> State:
        if state[1] != s1[1] or state[1] is None:
            return state  # different item: the reset decouples outcomes
        depth, nid, flags, cond = state
        # fixed_false merges downward-exactly, upward-conservatively (it
        # only gates sealing, never visibility).
        return (depth, nid, self._merge_delta(flags, s1[2], s2[2]), cond)

    @staticmethod
    def _merge_delta(flags, f1, f2):
        merged = []
        for f, a, b in zip(flags, f1, f2):
            outcome, ft, ff = f
            outcome += b[0] - a[0]
            ft = ft or (b[1] and not a[1])
            ff = ff and (b[2] or not a[2])
            merged.append((outcome, ft, ff))
        return tuple(merged)

    def on_transition(self, uid: int, s1: State, s2: State) -> List[Event]:
        nid = s2[1]
        if nid is None or s1[1] != nid:
            return []
        item = self._item_flags.get(nid)
        if item is None:
            # Item still open (the end-of-item decision will see the new
            # state) or already sealed: nothing to retract here.
            return []
        merged = self._merge_delta(item, s1[2], s2[2])
        self._item_flags[nid] = merged
        was, now = self._visible_flags(item), self._visible_flags(merged)
        if was == now:
            return []
        return [show_event(nid)] if now else [hide_event(nid)]

    def __repr__(self) -> str:
        return "Predicate({} x{} {}, scope={}, {} -> {})".format(
            self.conditions[0].stages if self.conditions else [],
            len(self.conditions), self.combine, self.scope,
            self.input_ids[0], self.output_id)
