"""Backward axes: ``parent`` and ``ancestor`` steps (paper Section VI-E).

Backward navigation cannot look backwards in a stream, so the source is
cloned before the pipeline (each event duplicated under a second substream
number with shared node identities — :class:`~repro.operators.clone.Tee`
with OIDs).  The cloned branch is expanded by the ``//*``/``//tag`` step,
so every potential ancestor arrives as a complete candidate subtree; the
backward step itself is a special join between the incoming stream and
those candidates:

* ``left_end`` — the latest eE seen in the cloned branch (any depth);
* ``right_end`` — the latest *top-level* eE of the incoming stream;

when the two are the same source node (OID equality), the incoming result
element just closed inside the candidate — the candidate is an ancestor —
and the candidate's ``outcome`` is incremented.  Candidates are emitted
optimistically inside mutable regions and hidden at their end when the
outcome is zero, exactly like a predicate; the same ``adjust``/
``on_transition`` machinery revises decisions under updates.

``left_end``/``right_end`` are source-position registers shared across all
open candidates (the pipeline interleaves the incoming event just before
its clone copies), so they deliberately live *outside* the wrapper-managed
state — see DESIGN.md.

``parent`` (``/..``) is the same join restricted to matches at candidate
depth 1 (the result element must be a *direct* child of the candidate).
"""

from __future__ import annotations

from typing import List, Optional

from ..events.model import (CD, EE, ES, ET, SE, SM, SS, ST, Event,
                            end_mutable, freeze as freeze_event,
                            hide as hide_event, show as show_event,
                            start_mutable)
from ..core.transformer import Context, State, StateTransformer
from ..core.wrapper import UpdatePolicy

_FIRST_UPDATE = int(SM)


class AncestorJoin(StateTransformer):
    """Join candidate ancestors (cloned+expanded) with incoming results."""

    inert = False

    def __init__(self, ctx: Context, clone_id: int, incoming_id: int,
                 output_id: int, direct_only: bool = False,
                 freeze_decisions: bool = True) -> None:
        super().__init__(ctx, (clone_id, incoming_id), output_id)
        self.clone_id = clone_id
        self.incoming_id = incoming_id
        self.direct_only = direct_only
        self.freeze_decisions = freeze_decisions
        # Wrapper-managed per-candidate state:
        self.depth = 0
        self.nid: Optional[int] = None
        self.outcome = 0
        # Source-position registers, shared across candidates (not cloned):
        self.right_end_oid: Optional[int] = None
        self.right_end_region: Optional[int] = None
        self.incoming_depth = 0

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        if stream_id == self.incoming_id:
            # The incoming stream feeds only the shared source-position
            # registers; per-region state copies would clobber interleaved
            # candidate progress when the bracket commits.
            return UpdatePolicy.SHARED
        return UpdatePolicy.TRANSLATE

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(
            state_class="constant" if self.freeze_decisions
            else "per-region",
            generates_updates=(("sM", "hide", "freeze")
                               if self.freeze_decisions
                               else ("sM", "hide", "show")),
            brackets=(
                {"kind": "sM", "target": self.output_id, "sub": "dynamic",
                 "freeze": ("always" if self.freeze_decisions
                            else "conditional"),
                 "per": "match"},
            ),
            notes="per-candidate optimistic region; shared source-position "
                  "registers live outside wrapper state",
        )
        # Backward axes correlate distant parts of the document through
        # oid registers — no forward path argument covers them.
        facts["projection"] = {"kind": "opaque", "note": "backward axis"}
        return facts

    def type_facts(self) -> dict:
        # Output elements come from the candidate (clone) side; nothing
        # can match when the incoming result side is provably empty.
        return {"kind": "join", "keep": 0, "requires": 1}

    def get_state(self) -> State:
        return (self.depth, self.nid, self.outcome)

    def set_state(self, state: State) -> None:
        self.depth, self.nid, self.outcome = state

    def bracket_anchor(self) -> int:
        return self.nid if self.nid is not None else self.output_id

    # -- event handling ---------------------------------------------------------

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        root = self.current_input_root
        if root is None:
            root = e.id
        if root == self.incoming_id and kind < _FIRST_UPDATE:
            # Incoming branch: feed the shared source-position registers.
            if kind == SE:
                self.incoming_depth += 1
            elif kind == EE:
                self.incoming_depth -= 1
                if self.incoming_depth == 0:
                    self.right_end_oid = e.oid
                    self.right_end_region = self.current_region
            return []
        # Candidate branch.  Kind tests ordered by frequency: candidate
        # subtrees are almost entirely sE/eE/cD; the structural kinds
        # close out the rare case.
        out: List[Event] = []
        if kind == SE:
            if self.depth == 0:
                self.nid = self.ctx.fresh_id()
                self.outcome = 0
                out.append(start_mutable(self.output_id, self.nid))
            self.depth += 1
            out.append(e.relabel(self.nid))
            return out
        if kind == EE:
            if self.nid is None:
                return []  # stray close outside any candidate
            self.depth -= 1
            out.append(e.relabel(self.nid))
            if (e.oid is not None and e.oid == self.right_end_oid
                    and self.depth >= 1
                    and (not self.direct_only or self.depth == 1)):
                # depth >= 1: the result element closed strictly inside
                # the candidate (ancestor excludes self, per XPath).
                self.outcome += 1
            if self.depth == 0:
                nid = self.nid
                self.nid = None
                out.append(end_mutable(self.output_id, nid))
                if self.outcome == 0:
                    out.append(hide_event(nid))
                if self.freeze_decisions:
                    # Matches can only occur inside the candidate's span;
                    # with no incoming updates the outcome is final here
                    # (set freeze_decisions=False for mutable sources).
                    out.append(freeze_event(nid))
            return out
        if kind == CD:
            if self.nid is None:
                return []  # stray top-level text is never an ancestor
            return [e.relabel(self.nid)]
        return [e.relabel(self.output_id)]  # sS/eS/sT/eT

    def on_region_hidden(self, uid: int) -> List[Event]:
        # A hidden incoming item must not match candidates that arrive
        # right after it in the cascade (the optimistic eE already set the
        # register).  Retroactive re-matching after show() is out of scope.
        if uid == self.right_end_region:
            self.right_end_oid = None
            self.right_end_region = None
        return []

    # -- adjustment ---------------------------------------------------------------

    @staticmethod
    def _visible(state: State) -> bool:
        return state[2] > 0

    def adjust(self, state: State, s1: State, s2: State) -> State:
        if state[1] != s1[1] or state[1] is None:
            return state
        depth, nid, outcome = state
        return (depth, nid, outcome + (s2[2] - s1[2]))

    def on_transition(self, uid: int, s1: State, s2: State) -> List[Event]:
        nid = s2[1]
        if nid is None or s1[1] != nid:
            return []
        was, now = self._visible(s1), self._visible(s2)
        if was == now:
            return []
        return [show_event(nid)] if now else [hide_event(nid)]
