"""Stream duplication (tee / clone).

Backward axes require the stream source to be cloned "immediately after it
is generated" (paper Section VI-E): each event is repeated under a second
substream number, preserving node identities (OIDs), so a later join can
recognize the same node in both branches.  The same operator implements
the duplication a compiler needs whenever one sequence feeds two sub-
expressions (a predicate's condition input, FLWOR key extraction, ...).

Cloning buffers nothing: the copy is emitted immediately after the
original.  Update brackets are forwarded on the original stream *and*
re-emitted (with fresh region numbers) on the copy — the TEE policy of the
generic wrapper.
"""

from __future__ import annotations

from typing import List

from ..events.model import Event
from ..core.transformer import Context, StateTransformer
from ..core.wrapper import UpdatePolicy


class Tee(StateTransformer):
    """Duplicate ``input_id``: pass it through and emit a copy stream."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, copy_id: int) -> None:
        # output_id is the copy; the original keeps its own number.
        super().__init__(ctx, (input_id,), copy_id)
        self.copy_id = copy_id

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.TEE

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(notes="brackets re-emitted with fresh region numbers "
                           "on the copy (TEE policy)")
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "copy"}

    def process(self, e: Event) -> List[Event]:
        return [e, e.relabel(self.copy_id)]
