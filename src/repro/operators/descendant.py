"""Descendant steps ``//*`` and ``//tag`` (paper Section VI-C).

``//*`` over recursive data is unbounded when implemented by buffering:
each inner element must be emitted *before* its enclosing element completes
(the paper generates subelements in postorder).  The update-stream trick
makes it bufferless: every event at nesting level ``d`` is emitted once per
enclosing selected element at the moment it is received, and each nested
match is bracketed by an insert-before update that retroactively moves its
copy ahead of the enclosing copy.

Outermost (level-1) matches are emitted *plain*, preceded by an empty
mutable **anchor region**: should a nested match occur, its insert-before
targets the anchor, landing just before the outer copy.  For non-recursive
``//tag`` no nested match ever occurs, so apart from the (tiny, immediately
frozen) anchors the step degenerates to a plain filter — the paper's
"as efficient as /tag" — and composes transparently with FLWOR machinery.

State: the depth counter and one substream id per open nesting level; no
event is ever buffered.  Generated regions are frozen as soon as they
close (Section V), so downstream stages and the display drop their state
immediately; the pooled region ids are re-declared by later siblings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..events.model import (CD, EE, ES, ET, SE, SS, ST, Event,
                            end_insert_before, end_mutable, freeze,
                            start_insert_before, start_mutable)
from ..core.transformer import Context, State, StateTransformer

_STRUCTURAL = (SS, ES, ST, ET)


class DescendantStep(StateTransformer):
    """``//*`` (``tag=None``) or ``//tag``: proper descendants, postorder.

    The input is a forest stream; for each top-level element the step
    selects every proper descendant (or every descendant with the given
    tag; a match nested in another match counts from its own level).
    Matching the paper, nested results come out in postorder.
    """

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int,
                 tag: Optional[str], freeze_regions: bool = True) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.tag = tag
        self.freeze_regions = freeze_regions
        self.depth = 0
        #: Open selected levels: (copy_id, region_id) — copy_id labels the
        #: level's copy events (output_id when plain), region_id is the
        #: anchor/bracket that nested inserts target.  Ids are freshly
        #: allocated per match (the paper's "new id"): pooled ids would
        #: collide when several update regions are processed concurrently.
        self.levels: Tuple[Tuple[int, int], ...] = ()

    def static_facts(self) -> dict:
        facts = super().static_facts()
        freeze_mode = "always" if self.freeze_regions else "never"
        facts.update(
            state_class="constant",
            generates_updates=(("sM", "sB", "freeze")
                               if self.freeze_regions else ("sM", "sB")),
            brackets=(
                {"kind": "sM", "target": self.output_id, "sub": "dynamic",
                 "freeze": freeze_mode, "per": "match"},
                {"kind": "sB", "target": "dynamic", "sub": "dynamic",
                 "freeze": freeze_mode, "per": "nested", "parent": 0},
            ),
            notes="O(nesting depth) open-level stack; anchors frozen at "
                  "subtree close" if self.freeze_regions else
                  "O(nesting depth) open-level stack",
        )
        facts["projection"] = {"kind": "step", "axis": "descendant",
                               "tag": self.tag}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "step", "axis": "descendant", "tag": self.tag}

    def get_state(self) -> State:
        return (self.depth, self.levels)

    def set_state(self, state: State) -> None:
        self.depth, self.levels = state

    def process(self, e: Event) -> List[Event]:
        # Kind tests ordered by frequency (sE/eE/cD dominate); per-level
        # copies go through Event.relabel, the slot-copying fast path.
        kind = e.kind
        if kind == SE:
            levels = self.levels
            out: List[Event] = \
                [e.relabel(cid) for cid, _ in levels] if levels else []
            if self.depth >= 1 and (self.tag is None or e.tag == self.tag):
                if not levels:
                    anchor = self.ctx.fresh_id()
                    out.extend((start_mutable(self.output_id, anchor),
                                end_mutable(self.output_id, anchor),
                                e.relabel(self.output_id)))
                    self.levels = ((self.output_id, anchor),)
                else:
                    nid = self.ctx.fresh_id()
                    out.extend((start_insert_before(self.levels[-1][1], nid),
                                e.relabel(nid)))
                    self.levels = self.levels + ((nid, nid),)
            self.depth += 1
            return out
        if kind == EE:
            self.depth -= 1
            levels = self.levels
            if not levels:
                return []
            out = []
            if self._closes_top(e):
                copy_id, region_id = levels[-1]
                self.levels = levels = levels[:-1]
                out.append(e.relabel(copy_id))
                if levels:
                    out.append(end_insert_before(levels[-1][1], copy_id))
                    if self.freeze_regions:
                        out.append(freeze(copy_id))
                elif self.freeze_regions:
                    out.append(freeze(region_id))  # seal the anchor
            if levels:
                out.extend(e.relabel(cid) for cid, _ in reversed(levels))
            return out
        if kind == CD:
            levels = self.levels
            return [e.relabel(cid) for cid, _ in levels] if levels else []
        return [e.relabel(self.output_id)]  # sS/eS/sT/eT

    def _closes_top(self, e: Event) -> bool:
        """Does this eE close the innermost open selected level?

        Elements nest LIFO; a closing tag that passes the tag test at depth
        >= 1 necessarily closes the element that opened the top level (any
        deeper matches have already closed), mirroring the sE test.  For
        ``//*`` the level count equals the depth, which double-checks it.
        """
        if self.depth < 1:
            return False
        if self.tag is not None:
            return e.tag == self.tag
        return len(self.levels) == self.depth

    def __repr__(self) -> str:
        return "DescendantStep(//{}: {} -> {})".format(
            self.tag if self.tag is not None else "*",
            self.input_ids[0], self.output_id)
