"""Sequence concatenation via insert-before updates (paper Section VI-A).

``(e1, e2)`` must emit all of ``e1``'s result before ``e2``'s, per tuple —
blocking and unbounded when buffered (the worst case is the entire left
sequence arriving after the right one).  The update-stream version is
stateless: each right tuple is wrapped in a mutable region, and an
insert-before update anchored at that region collects the left events,
retroactively moving them ahead no matter the arrival order.

Both inputs are TRANSPARENT: content keeps its original stream numbers
(they are routed into the regions by id), so concatenations chain — the
compiler builds ``(a, b, c)`` right-associatively as ``(a, (b, c))``,
which makes every bracket open before content that must land inside it.
"""

from __future__ import annotations

from typing import List

from ..events.model import (ES, ET, SS, ST, Event, end_insert_before,
                            end_mutable, end_tuple, start_insert_before,
                            start_mutable, start_tuple)
from ..core.transformer import Context, State, StateTransformer
from ..core.wrapper import UpdatePolicy


class Concat(StateTransformer):
    """Binary tuple-aligned concatenation of two substreams."""

    inert = True

    def __init__(self, ctx: Context, left_id: int, right_id: int,
                 output_id: int) -> None:
        super().__init__(ctx, (left_id, right_id), output_id)
        self.left_id = left_id
        self.right_id = right_id

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.TRANSPARENT

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(
            paper_blocking=True,
            generates_updates=("sM", "sB"),
            brackets=(
                {"kind": "sM", "target": self.output_id,
                 "sub": self.right_id, "freeze": "never", "per": "tuple"},
                {"kind": "sB", "target": self.right_id,
                 "sub": self.left_id, "freeze": "never", "per": "tuple"},
            ),
            notes="stateless; reuses the input stream numbers as region "
                  "numbers, one region pair per tuple, never frozen",
        )
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        return {"kind": "union"}

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind == ST:
            if e.id == self.left_id:
                return []  # F1: drop left tuple markers
            if e.id == self.right_id:
                # F2: wrap the right tuple in a mutable region and open an
                # insert-before update that will hold the left content.
                return [start_tuple(self.output_id),
                        start_mutable(self.output_id, self.right_id),
                        start_insert_before(self.right_id, self.left_id)]
            return [e]  # a marker inside region content: plain content
        if kind == ET:
            if e.id == self.left_id:
                return []
            if e.id == self.right_id:
                return [end_insert_before(self.right_id, self.left_id),
                        end_mutable(self.output_id, self.right_id),
                        end_tuple(self.output_id)]
            return [e]
        if kind == SS:
            if e.id == self.left_id:
                return []
            if e.id == self.right_id:
                return [Event(SS, self.output_id)]
            return [e]
        if kind == ES:
            if e.id == self.left_id:
                return []
            if e.id == self.right_id:
                return [Event(ES, self.output_id)]
            return [e]
        # Content keeps its stream number; the display routes it into the
        # open region with that id.
        return [e]
