"""Unblocked sorting via insert-after updates (paper Section VI-D).

Naive sorting is blocking and unbounded.  The paper unblocks it: every
incoming item is *inserted at its final position immediately* using an
insert-after update anchored at the region holding the greatest key below
its own.  The result display therefore always shows a sorted list of the
items seen so far, growing as items arrive — the introduction's "each
qualified book is inserted in the right place in the sorted list".

An item's position is only known once its key is seen, which may be
anywhere inside the item, so the operator suspends the item's events in a
queue and releases them the moment the key arrives (the paper's F1/F2
pair).  Sorting stays non-blocking but — as the paper itself notes — keeps
unbounded state: the key-to-region map grows with the number of items.

Items are FLWOR tuples; keys arrive on a separate substream, one cD per
tuple (the compiler extracts them with a tee *before* any where-filter so
every tuple has a key).  The item stream uses the RAW update policy: all
update brackets travel through the queue together with their content, so
upstream revocable predicates compose — a filtered-out item occupies its
sorted slot invisibly (hidden region) and can be shown retroactively.
Re-keying (moving an already-placed item when its key value is updated) is
out of scope, as in the paper.  Tuple markers are preserved inside the
placed regions so per-tuple stages (return construction) compose after
sorting.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..events.model import (CD, ES, ET, FREEZE, HIDE, SHOW, SS, ST,
                            UPDATE_ENDS, UPDATE_STARTS, Event,
                            end_insert_after, end_mutable, hide as
                            hide_event, show as show_event,
                            start_insert_after, start_mutable)
from ..core.transformer import Context, State, StateTransformer
from ..core.wrapper import UpdatePolicy


def sort_key(text: str) -> Tuple:
    """Total order on key strings: numerics first (numerically), then text."""
    try:
        return (0, float(text), "")
    except ValueError:
        return (1, 0.0, text)


class SortTuples(StateTransformer):
    """Order the tuples of ``input_id`` by the key cDs of ``key_id``."""

    inert = False

    def __init__(self, ctx: Context, input_id: int, key_id: int,
                 output_id: int, descending: bool = False) -> None:
        super().__init__(ctx, (input_id, key_id), output_id)
        self.item_id = input_id
        self.key_id = key_id
        self.descending = descending
        #: The empty region emitted at stream start; every insert-after
        #: chain is ultimately anchored here ("position before all items").
        self.anchor_id = ctx.fresh_id()
        # Display-ordered placements: ((key, seq), region_id) tuples.
        self.keys: tuple = ()
        self.seq = 0
        self.in_tuple = False
        self.found_key = False
        self.nid: Optional[int] = None
        self.cur_anchor: Optional[int] = None
        self.queue: tuple = ()
        # Brackets that span several tuples (e.g. a predicate region
        # around a whole sequence) cannot survive reordering: the sort
        # dissolves them and mirrors their later hide/show onto every
        # item placed while they were open.
        self._spanning: set = set()
        self._open_spanning: list = []
        self._placed_under: dict = {}  # spanning id -> [placed nids]
        self._tuple_brackets: set = set()  # brackets of the open tuple
        self._seen_brackets: set = set()   # all within-tuple brackets

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.RAW

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(
            paper_blocking=True,
            state_class="unbounded",
            generates_updates=("sM", "sA", "hide", "show"),
            brackets=(
                {"kind": "sM", "target": self.output_id,
                 "sub": self.anchor_id, "freeze": "never", "per": "stream"},
                {"kind": "sA", "target": "dynamic", "sub": "dynamic",
                 "freeze": "never", "per": "tuple", "parent": 0},
            ),
            notes="key -> placement map grows with the stream (the "
                  "paper's noted unbounded case); placements stay "
                  "mutable so late items can be inserted between them",
        )
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        # Reorders the item stream; the key stream is consumed.  The
        # checker unions all inputs for "copy" — including the key's
        # text type is an over-approximation, which is sound.
        return {"kind": "copy"}

    def get_state(self) -> State:
        return (self.keys, self.seq, self.in_tuple, self.found_key,
                self.nid, self.cur_anchor, self.queue)

    def set_state(self, state: State) -> None:
        (self.keys, self.seq, self.in_tuple, self.found_key, self.nid,
         self.cur_anchor, self.queue) = state

    # -- placement ----------------------------------------------------------

    def _stays_before(self, placed: Tuple, entry: Tuple) -> bool:
        """Does an already-placed (key, seq) sort before the new entry?"""
        if self.descending:
            (pk, ps), (ek, es) = placed, entry
            return pk > ek or (pk == ek and ps < es)
        return placed < entry

    def _place(self, key_text: str) -> List[Event]:
        """Open the item's insert-after region at its sorted position."""
        self.seq += 1
        entry = (sort_key(key_text), self.seq)
        self.nid = self.ctx.fresh_id()
        anchor = self.anchor_id
        index = 0
        for k, rid in self.keys:
            if self._stays_before(k, entry):
                anchor = rid
                index += 1
            else:
                break
        self.keys = (self.keys[:index] + ((entry, self.nid),)
                     + self.keys[index:])
        self.cur_anchor = anchor
        self.found_key = True
        for span in self._open_spanning:
            self._placed_under.setdefault(span, []).append(self.nid)
        out = [start_insert_after(anchor, self.nid)]
        out.extend(self._reissue(ev, relabel)
                   for ev, relabel in self.queue)
        self.queue = ()
        return out

    def _reissue(self, e: Event, relabel: bool) -> Event:
        """Relabel a suspended event into the item's placed region."""
        if e.is_update:
            if e.id == self.item_id or e.id in self._spanning:
                return Event(e.kind, self.nid, sub=e.sub)
            return e
        if relabel:
            return e.relabel(self.nid)
        return e

    def _enqueue(self, e: Event) -> List[Event]:
        relabel = (not e.is_update
                   and (e.id == self.item_id or e.id in self._spanning))
        if self.found_key:
            return [self._reissue(e, relabel)]
        self.queue = self.queue + ((e, relabel),)
        return []

    # -- the state modifiers F1 (items) and F2 (keys) --------------------------

    def process(self, e: Event) -> List[Event]:
        kind = e.kind
        # Route by the *logical* stream: region content arrives with its
        # region number, so the wrapper-provided root decides whether an
        # event belongs to the item or the key stream.
        root = self.current_input_root
        if root is None:
            root = e.id
        if e.is_update and root == self.item_id:
            return self._item_update(e)
        if root == self.key_id:
            if (not e.is_update and kind == CD and self.in_tuple
                    and not self.found_key):
                return self._place(e.text or "")
            return []  # key-stream structure and updates: pacing only
        if not e.is_update and root == self.item_id:
            if kind == SS:
                return [Event(SS, self.output_id),
                        start_mutable(self.output_id, self.anchor_id),
                        end_mutable(self.output_id, self.anchor_id)]
            if kind == ES:
                return [Event(ES, self.output_id)]
            if kind == ST:
                self.in_tuple = True
                self.found_key = False
                self.queue = ((e, True),)
                self._tuple_brackets = set()
                return []
            if kind == ET:
                self.in_tuple = False
                out = [] if self.found_key else self._place("")
                out.append(self._reissue(e, True))
                out.append(end_insert_after(self.cur_anchor, self.nid))
                self.nid = None
                self.cur_anchor = None
                self.found_key = False
                return out
        # Item content: suspend until the key is known, then stream.
        return self._enqueue(e)

    def _item_update(self, e: Event) -> List[Event]:
        """Update events on the item stream (delivered raw).

        Brackets opening *inside* a tuple travel with the tuple through
        the queue; brackets spanning tuples are dissolved and their
        visibility toggles fan out to the items placed under them; late
        updates and toggles addressing the regions of already-placed
        tuples pass straight through (their targets are live downstream).
        """
        kind = e.kind
        if kind in UPDATE_STARTS:
            if self.in_tuple:
                self._seen_brackets.add(e.sub)
                self._tuple_brackets.add(e.sub)
                return self._enqueue(e)
            if e.id in self._seen_brackets:
                # A late update targeting a region that travelled inside
                # an earlier tuple (e.g. a value replacement).
                self._seen_brackets.add(e.sub)
                return [e]
            self._spanning.add(e.sub)
            self._open_spanning.append(e.sub)
            return []
        if kind in UPDATE_ENDS:
            if e.sub in self._spanning:
                if e.sub in self._open_spanning:
                    self._open_spanning.remove(e.sub)
                return []
            if self.in_tuple and e.sub in self._tuple_brackets:
                return self._enqueue(e)
            return [e]
        # hide / show / freeze
        if e.id in self._spanning:
            placed = self._placed_under.get(e.id, ())
            if kind == HIDE:
                return [hide_event(n) for n in placed]
            if kind == SHOW:
                return [show_event(n) for n in placed]
            # freeze: the bracket is sealed; drop the fan-out bookkeeping.
            self._placed_under.pop(e.id, None)
            self._spanning.discard(e.id)
            return []
        if self.in_tuple and e.id in self._tuple_brackets:
            return self._enqueue(e)
        if kind == FREEZE:
            self._seen_brackets.discard(e.id)
        # A toggle for a region of an already-placed tuple: pass through
        # (its bracket went downstream with the placed item).
        return [e]

    def __repr__(self) -> str:
        return "SortTuples(items={}, keys={} -> {})".format(
            self.item_id, self.key_id, self.output_id)
