"""FLWOR machinery: the ``for`` clause's tuple generator.

A FLWOR loop binds its variable to each item of the input sequence; in the
stream representation each binding becomes a *tuple* bracketed by sT/eT
events (paper Section II).  Downstream per-tuple operators (where clauses,
return construction, concatenation, sorting) align on these markers.

:class:`ForTuples` is also the pipeline's **update-structure normalizer**.
Upstream operators (predicates, descendant steps) emit update regions that
may span *several* items — but per-tuple operators reorder, construct and
concatenate tuples individually, so a spanning bracket cannot survive the
tuple boundary.  ForTuples therefore consumes the raw bracket structure
and re-expresses it per tuple:

* every item is wrapped in its own fresh mutable region (``wid``);
* a bracket spanning items is *dissolved*; its later ``hide``/``show``
  fan out to the wids of the items produced under it, and its ``freeze``
  releases them (each wid is sealed once all of its source brackets are);
* a replacement of a spanning region erases the wids produced under the
  old content irrevocably and itemizes the new content in its place;
* brackets opening *inside* an item (field-level mutable regions) are
  retargeted into the item's wid and forwarded, so later value updates
  keep flowing through the generic wrapper machinery downstream.

After this stage the stream contains only per-tuple regions — the
invariant the rest of the FLWOR pipeline relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..events.model import (CD, EE, ES, ET, FREEZE, HIDE, SE, SHOW, SS, ST,
                            UPDATE_ENDS, UPDATE_STARTS, Event, end_tuple,
                            freeze as freeze_event, hide as hide_event,
                            show as show_event, start_mutable, end_mutable,
                            start_tuple)
from ..core.transformer import Context, State, StateTransformer
from ..core.wrapper import UpdatePolicy


class _Spanning:
    """Bookkeeping for one dissolved multi-item bracket."""

    __slots__ = ("wids", "open", "hidden")

    def __init__(self) -> None:
        self.wids: List[int] = []
        self.open = True
        self.hidden = False


class ForTuples(StateTransformer):
    """Wrap each top-level item of the input forest in sT/eT markers.

    Existing tuple markers on the input are dropped (re-tupling: a nested
    FLWOR iterating over a tuple stream re-groups by its own items).
    """

    inert = False  # live bracket bookkeeping; adjust stays the identity

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)
        self.depth = 0
        self.wid: Optional[int] = None
        #: Dissolved multi-item brackets, by region number (latest wins).
        self._spanning: Dict[int, _Spanning] = {}
        self._open_spanning: List[int] = []
        #: Within-item brackets forwarded downstream (targets stay valid).
        self._forwarded: Set[int] = set()
        #: wid -> spanning sources that must freeze before it seals.
        self._pending_seal: Dict[int, Set[int]] = {}
        self._closed_tuples: Set[int] = set()

    def update_policy(self, stream_id: int) -> UpdatePolicy:
        return UpdatePolicy.RAW

    def static_facts(self) -> dict:
        facts = super().static_facts()
        facts.update(
            state_class="per-region",
            generates_updates=("sM", "hide", "show", "freeze"),
            brackets=(
                {"kind": "sM", "target": self.output_id, "sub": "dynamic",
                 "freeze": "derived", "per": "item"},
            ),
            notes="normalizes update structure per tuple: spanning "
                  "brackets are dissolved (their wids seal when every "
                  "source freezes), within-item brackets are retargeted "
                  "and forwarded",
        )
        # Tuple brackets are driven by item boundaries, which survive any
        # sound projection (spine elements are never pruned).
        facts["projection"] = {"kind": "plumbing"}
        return facts

    def type_facts(self) -> dict:
        # Re-tuples the forest: item labels pass through unchanged.
        return {"kind": "copy"}

    def get_state(self) -> State:
        return (self.depth, self.wid)

    def set_state(self, state: State) -> None:
        self.depth, self.wid = state

    # -- item lifecycle -------------------------------------------------------

    def _begin_item(self) -> List[Event]:
        self.wid = self.ctx.fresh_id()
        pending = set(self._open_spanning)
        self._pending_seal[self.wid] = pending
        hidden = False
        for x in self._open_spanning:
            span = self._spanning[x]
            span.wids.append(self.wid)
            hidden = hidden or span.hidden
        out = [start_tuple(self.output_id),
               start_mutable(self.output_id, self.wid)]
        if hidden:
            out.append(hide_event(self.wid))
        return out

    def _end_item(self) -> List[Event]:
        wid = self.wid
        self.wid = None
        out = [end_mutable(self.output_id, wid)]
        if not self._pending_seal.get(wid):
            self._pending_seal.pop(wid, None)
            out.append(freeze_event(wid))
        else:
            self._closed_tuples.add(wid)
        out.append(end_tuple(self.output_id))
        return out

    # -- events ------------------------------------------------------------------

    def process(self, e: Event) -> List[Event]:
        if e.is_update:
            return self._update(e)
        if (self.current_region is not None
                and self.current_region in self._forwarded):
            # Content of a forwarded (within-item) bracket keeps its own
            # region number: the bracket was retargeted into the item's
            # region and routes it.  This also covers late replacement
            # content, which must never be itemized as new tuples.
            return [e]
        kind = e.kind
        if kind in (SS, ES):
            return [e.relabel(self.output_id)]
        if kind in (ST, ET):
            return []
        if kind == SE:
            self.depth += 1
            if self.depth == 1:
                return self._begin_item() + [e.relabel(self.wid)]
            return [e.relabel(self.wid)]
        if kind == EE:
            self.depth -= 1
            out = [e.relabel(self.wid)]
            if self.depth == 0:
                out.extend(self._end_item())
            return out
        # cD
        if self.depth == 0:
            return (self._begin_item() + [e.relabel(self.wid)]
                    + self._end_item())
        return [e.relabel(self.wid)]

    # -- update handling -------------------------------------------------------------

    def _update(self, e: Event) -> List[Event]:
        kind = e.kind
        if kind in UPDATE_STARTS:
            return self._update_start(e)
        if kind in UPDATE_ENDS:
            return self._update_end(e)
        # hide / show / freeze
        if e.id in self._spanning:
            return self._toggle_spanning(e)
        return [e]  # forwarded (within-item) regions keep their updates

    def _update_start(self, e: Event) -> List[Event]:
        i, j = e.id, e.sub
        if self.depth > 0:
            # A bracket opening inside an item: retarget top-level ones
            # into the item's region and forward.
            self._forwarded.add(j)
            if i in self._forwarded:
                return [e]
            return [Event(e.kind, self.wid, sub=j)]
        if i in self._forwarded:
            # Late update to a forwarded within-item region (e.g. a stock
            # price replacement): flows through untouched.
            self._forwarded.add(j)
            return [e]
        if i in self._spanning:
            # Replacing (or inserting relative to) a spanning region: the
            # new content is itemized under a new spanning record; a
            # replacement erases the items of the old content for good.
            span = _Spanning()
            out: List[Event] = []
            if e.kind.name == "START_REPLACE":
                old = self._spanning[i]
                for wid in old.wids:
                    out.append(hide_event(wid))
                    out.append(freeze_event(wid))
                    self._release_wid(wid)
                old.wids = []
            self._spanning[j] = span
            self._open_spanning.append(j)
            return out
        # A fresh bracket outside any item: it will span items; dissolve.
        self._spanning[j] = _Spanning()
        self._open_spanning.append(j)
        return []

    def _update_end(self, e: Event) -> List[Event]:
        j = e.sub
        if j in self._spanning:
            self._spanning[j].open = False
            if j in self._open_spanning:
                self._open_spanning.remove(j)
            return []
        if j in self._forwarded:
            if self.depth > 0 and e.id not in self._forwarded:
                return [Event(e.kind, self.wid, sub=j)]
            return [e]
        return [e]

    def _toggle_spanning(self, e: Event) -> List[Event]:
        span = self._spanning[e.id]
        out: List[Event] = []
        # Only toggle wids that are still unsealed: a replacement of a
        # sibling spanning bracket may have frozen and released a wid that
        # this span's list still holds, and hide/show after freeze breaks
        # the stream protocol (frozen regions are closed to everything).
        if e.kind == HIDE:
            span.hidden = True
            out.extend(hide_event(w) for w in span.wids
                       if w in self._pending_seal)
        elif e.kind == SHOW:
            span.hidden = False
            out.extend(show_event(w) for w in span.wids
                       if w in self._pending_seal)
        else:  # FREEZE: release the wids this source was holding open
            for wid in span.wids:
                pending = self._pending_seal.get(wid)
                if pending is None:
                    continue
                pending.discard(e.id)
                if not pending and wid in self._closed_tuples:
                    out.append(freeze_event(wid))
                    self._release_wid(wid)
            del self._spanning[e.id]
            if e.id in self._open_spanning:
                self._open_spanning.remove(e.id)
        return out

    def _release_wid(self, wid: int) -> None:
        self._pending_seal.pop(wid, None)
        self._closed_tuples.discard(wid)


class TupleStrip(StateTransformer):
    """Remove tuple markers, turning a tuple stream back into a forest."""

    inert = True

    def __init__(self, ctx: Context, input_id: int, output_id: int) -> None:
        super().__init__(ctx, (input_id,), output_id)

    def type_facts(self) -> dict:
        return {"kind": "copy"}

    def process(self, e: Event) -> List[Event]:
        if e.kind in (ST, ET):
            return []
        return [e.relabel(self.output_id)]
