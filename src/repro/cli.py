"""Command-line interface: ``python -m repro``.

Run a streaming XQuery over an XML document or a serialized update stream:

    python -m repro 'X//book[author="Joyce"]/title' catalog.xml
    python -m repro --events 'stream()//quote/price' ticker.events
    cat catalog.xml | python -m repro 'count(X//book)'

Options:
    --events           input is the textual event format (repro.events),
                       typically containing embedded updates
    --mutable-source   keep predicate decisions revocable (input embeds
                       updates)
    --ignore-updates   consumer opt-out: treat all updates as void
    --follow           print the display every time it changes (the
                       continuous answer), not just the final result
    --stats            print execution metrics to stderr
    --metrics          record per-stage telemetry while running and
                       print it as JSON to stderr (also: REPRO_METRICS=1)
    --sanitize         validate the inter-stage event protocol while
                       running (also: REPRO_SANITIZE=1)
    --projection       derive the plan's path projection and skip
                       irrelevant subtrees in the tokenizer (add
                       --schema xmark|dblp to sharpen //-led paths)
    --fuse             compile the pipeline into fused stage segments
                       (also: REPRO_FUSE=1)
    --query-file FILE  read the query text from a file instead of argv

There is also a benchmark subcommand that records the paper's evaluation
quantities as machine-readable JSON (see repro.bench.record):

    python -m repro bench --scale 0.1 --repeats 3 --out-dir .
    python -m repro bench --memory --out-dir .
    python -m repro bench --projection --out-dir .
    python -m repro bench --fusion --scale 0.15 --repeats 7 --out-dir .

a static plan analyzer that lints a compiled pipeline without
running it — per-stage memory classes, the precomputed fix map, update
reachability (paper query names Q1..Q9 are accepted as shorthand):

    python -m repro analyze 'X//europe//item/quantity'
    python -m repro analyze Q7 --input auction.xml
    python -m repro analyze Q3 --json
    python -m repro analyze Q2 --fusion      # compile-layer partition
    python -m repro analyze --fusion         # joint Q1..Q9 prefix trie
    python -m repro analyze Q1 --types --schema xmark  # type checker

two telemetry subcommands that run a query with the observability
layer attached (paper query names synthesize their dataset when no
input is given, so ``python -m repro trace Q3`` works standalone):

    python -m repro stats Q1                 # per-stage metrics JSON
    python -m repro trace Q3 --input doc.xml # update-provenance JSON
    python -m repro trace Q3 --format=chrome # Chrome/Perfetto trace

an export subcommand that emits the recorded telemetry in standard
interchange formats (Chrome trace-event JSON for chrome://tracing /
ui.perfetto.dev, OpenMetrics text for Prometheus tooling):

    python -m repro export trace Q3 --out q3_trace.json
    python -m repro export metrics Q1 --out q1.prom

and a chaos subcommand that runs a sharded multi-query workload under
a scripted fault plan and proves the recovery machinery by byte-level
differential against a clean run (see repro.fault for the spec
grammar):

    python -m repro chaos --fault-plan 'kill:shard=0,after=3'
    python -m repro chaos --fault-plan 'corrupt:frame=5' --report-dir ci

a whole-process crash mode of the same subcommand that SIGKILLs a
durable run at seeded points and proves recovery from the write-ahead
log is byte-identical:

    python -m repro chaos --crash --seeds 1,2,3 --workers 1
    python -m repro chaos --crash --workers 3 --report-dir ci

and a recover subcommand that rebuilds a crashed run from its
write-ahead log directory (see repro.fault.wal / repro.fault.recover):

    python -m repro recover /var/run/job/wal --input catalog.xml
    python -m repro recover ./wal --json --report-dir ci
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional

from .events.serialize import iter_loads
from .xmlio.tokenizer import XMLTokenizer, tokenize
from .xquery.engine import XFlux


def build_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Streaming XQuery over XML update streams (XFlux "
                    "reproduction)")
    ap.add_argument("query", nargs="?",
                    help="query text (or use --query-file)")
    ap.add_argument("input", nargs="?",
                    help="input file (default: stdin)")
    ap.add_argument("--query-file", help="read the query from this file")
    ap.add_argument("--events", action="store_true",
                    help="input is the textual event-stream format")
    ap.add_argument("--mutable-source", action="store_true",
                    help="the input embeds updates; keep decisions "
                         "revocable")
    ap.add_argument("--ignore-updates", action="store_true",
                    help="consumer opt-out: ignore all embedded updates")
    ap.add_argument("--follow", action="store_true",
                    help="print the display whenever it changes")
    ap.add_argument("--stats", action="store_true",
                    help="print execution metrics to stderr")
    ap.add_argument("--metrics", action="store_true",
                    help="record per-stage telemetry and print it as "
                         "JSON to stderr (also: REPRO_METRICS=1)")
    ap.add_argument("--sanitize", action="store_true",
                    help="validate the inter-stage event protocol while "
                         "running (raises on the first violation)")
    ap.add_argument("--projection", action="store_true",
                    help="derive the plan's path projection and skip "
                         "irrelevant subtrees in the tokenizer (XML "
                         "input only; byte-identical by construction)")
    ap.add_argument("--schema",
                    help="schema refinement for --projection: 'xmark', "
                         "'dblp', or a DTD file path")
    ap.add_argument("--fuse", action="store_true",
                    help="compile the pipeline into fused stage "
                         "segments (byte-identical by construction; "
                         "also: REPRO_FUSE=1)")
    ap.add_argument("--max-depth", type=int, default=None,
                    help="reject documents nesting elements deeper than "
                         "this (structured error instead of unbounded "
                         "stack growth)")
    ap.add_argument("--max-token-bytes", type=int, default=None,
                    help="reject any single tag or character-data run "
                         "larger than this many bytes")
    ap.add_argument("--max-attrs", type=int, default=None,
                    help="reject elements carrying more attributes "
                         "than this")
    ap.add_argument("--flight", action="store_true",
                    help="keep a bounded flight-recorder ring of recent "
                         "events for post-mortem bundles (also: "
                         "REPRO_FLIGHT=1)")
    return ap


def build_analyze_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro analyze",
        description="Statically analyze a compiled query pipeline: "
                    "per-stage memory classes, tracked/emitted update "
                    "brackets, the precomputed fix map, and lints.")
    ap.add_argument("query", nargs="?",
                    help="query text, or a paper query name Q1..Q9")
    ap.add_argument("--query-file", help="read the query from this file")
    ap.add_argument("--mutable-source", action="store_true",
                    help="analyze assuming the input embeds updates")
    ap.add_argument("--input",
                    help="also run the query over this XML document and "
                         "check the static fix map against the runtime "
                         "one ('-' for stdin)")
    ap.add_argument("--events", action="store_true",
                    help="--input is the textual event-stream format")
    ap.add_argument("--sanitize", action="store_true",
                    help="interpose protocol checkers during the "
                         "--input run")
    ap.add_argument("--projection", action="store_true",
                    help="also print the derived stream projection "
                         "(path set, or the universal fallback and why)")
    ap.add_argument("--schema",
                    help="schema for the projection and the type "
                         "checker: 'xmark', 'dblp', or a DTD file path")
    ap.add_argument("--types", action="store_true",
                    help="also run the static type checker: per-stage "
                         "regular-expression types, emptiness proofs, "
                         "dead stages, and update-effect lints (add "
                         "--schema to sharpen; with --input, the "
                         "inferred emptiness is cross-checked against "
                         "runtime event counts)")
    ap.add_argument("--fusion", action="store_true",
                    help="also report the compile layers: the plan's "
                         "stage-fusion partition plus the joint Q1..Q9 "
                         "shared-prefix trie (with no query at all, "
                         "just the trie)")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of text")
    return ap


def _fusion_partition(plan) -> dict:
    """The plan's stage-fusion segment partition, as plain data."""
    from .compile import fusion_partition
    fplan = fusion_partition(plan)
    stage_names = [type(s).__name__ for s in plan.stages]
    return {
        "stages": fplan.n_stages,
        "units": len(fplan.segments),
        "fused": fplan.fused,
        "segments": [
            {"start": spec.start, "end": spec.end,
             "fused": spec.fused,
             "stages": stage_names[spec.start:spec.end],
             "dormant_levels": list(spec.dormant)}
            for spec in fplan.segments],
    }


def _fusion_report(plan=None) -> dict:
    """Compile-layer analysis: fusion partition + joint sharing trie."""
    from .bench.harness import PAPER_QUERIES
    from .compile import describe_sharing
    payload = {"shared_prefix_trie":
               describe_sharing(list(PAPER_QUERIES.items()))}
    if plan is not None:
        payload["partition"] = _fusion_partition(plan)
    return payload


def _render_fusion(payload: dict, out) -> None:
    part = payload.get("partition")
    if part is not None:
        print("fusion partition: {} stages -> {} units{}".format(
            part["stages"], part["units"],
            "" if part["fused"] else " (nothing fusible)"), file=out)
        for spec in part["segments"]:
            label = "fused" if spec["fused"] else "interpreted"
            dormant = sum(1 for d in spec["dormant_levels"] if d)
            print("  stages {}..{} {} [{}]{}".format(
                spec["start"], spec["end"], label,
                ", ".join(spec["stages"]),
                " ({} dormant-capable)".format(dormant) if dormant
                else ""), file=out)
    trie = payload["shared_prefix_trie"]
    print("joint shared-prefix trie over the paper queries "
          "({} queries, {} eligible, {} shared):".format(
              trie["queries"], trie["eligible"], trie["shared"]),
          file=out)
    for node in trie["prefixes"]:
        print("  {:<45} x{} {} {}".format(
            node["prefix"], node["count"], " ".join(node["queries"]),
            "(evaluated once)" if node["shared"] else ""), file=out)
    for name, why in sorted(trie["excluded"].items()):
        print("  excluded {}: {}".format(name, why), file=out)


def _resolve_query_name(name: str, err) -> Optional[str]:
    """Map a paper query name to its text; reject unknown ``Qn`` names.

    A bare name matching the ``Qn`` pattern that is *not* a known paper
    query is almost certainly a typo, not a query — failing it fast
    with the valid range beats a confusing parse error.  Returns the
    query text, or ``None`` after printing the diagnostic.
    """
    import re
    from .bench.harness import PAPER_QUERIES
    if name in PAPER_QUERIES:
        return PAPER_QUERIES[name]
    if re.fullmatch(r"[Qq]\d+", name):
        print("error: unknown paper query name {!r} (expected Q1..Q{})"
              .format(name, len(PAPER_QUERIES)), file=err)
        return None
    return name


def analyze_main(argv, out, err) -> int:
    import json
    from .analysis import analyze_plan, render_report, report_to_dict, \
        verify_against_runtime
    from .xquery.engine import QueryRun
    args = build_analyze_arg_parser().parse_args(list(argv))
    if args.query_file:
        query_text = _read_text(args.query_file)
    elif args.query is None:
        if args.fusion:
            # Standalone compile-layer overview: just the joint trie.
            payload = _fusion_report()
            if args.json:
                print(json.dumps(payload, indent=2), file=out)
            else:
                _render_fusion(payload, out)
            return 0
        print("error: no query given (positional or --query-file)",
              file=err)
        return 2
    else:
        query_text = _resolve_query_name(args.query, err)
        if query_text is None:
            return 2

    try:
        engine = XFlux(query_text, mutable_source=args.mutable_source)
        plan = engine.compile()
        report = analyze_plan(plan)
        from .analysis.projection import (ProjectionMatcher,
                                          derive_projection)
        proj = derive_projection(plan)
        prunable = ProjectionMatcher(proj, schema=args.schema).prunable
    except Exception as exc:  # parse/compile diagnostics for the user
        print("error: {}".format(exc), file=err)
        return 2
    # Type inference backs both the --types report and the always-on
    # "types" block of --json.  A mutable source only *fails* the run
    # when the caller explicitly asked for --types; the JSON block
    # records why inference was skipped instead.
    type_report = None
    type_skip = None
    if args.types or args.json:
        from .analysis import SchemaError, TypeCheckError, infer_types
        try:
            type_report = infer_types(plan, schema=args.schema)
        except TypeCheckError as exc:
            type_skip = str(exc)
            if args.types:
                print("error: --types: {}".format(exc), file=err)
                return 2
        except (SchemaError, ValueError) as exc:
            print("error: --schema: {}".format(exc), file=err)
            return 2
    fusion_payload = _fusion_report(plan) if args.fusion else None
    payload = report_to_dict(report) if args.json else None
    if payload is not None:
        payload["projection"] = dict(proj.to_dict(), prunable=prunable,
                                     schema=args.schema)
        payload["types"] = (type_report.to_dict()
                            if type_report is not None
                            else {"skipped": type_skip})
        payload["fusion"] = (fusion_payload
                             if fusion_payload is not None
                             else {"partition": _fusion_partition(plan)})
    if not args.json:
        print(render_report(report), file=out)
        if args.types and type_report is not None:
            print(type_report.render(), file=out)
        if fusion_payload is not None:
            _render_fusion(fusion_payload, out)
        if args.projection:
            if proj.universal:
                print("projection: universal ({})".format(
                    proj.reason or "paths cover the whole document"),
                    file=out)
            else:
                print("projection paths ({}):".format(
                    "prunable" if prunable else
                    "not prunable without a schema"), file=out)
                for path in proj.describe():
                    print("  {}".format(path), file=out)

    if args.input is None:
        if args.json:
            print(json.dumps(payload, indent=2), file=out)
        return 0
    # Dynamic cross-check: run the SAME plan so stream numbers line up.
    # With --types the run records per-stage event counts so inferred
    # emptiness can be held against what actually flowed.
    check_types = args.types and type_report is not None
    text = _read_text(args.input)
    run = QueryRun(plan, sanitize=True if args.sanitize else None,
                   metrics=True if check_types else None)
    try:
        run.feed_all(_event_source(text, args.events, plan.needs_oids))
        run.finish()
    except Exception as exc:
        print("error: {}".format(exc), file=err)
        return 1
    problems = verify_against_runtime(plan, report)
    type_problems = []
    if check_types and run.recorder is not None:
        from .analysis import verify_types_against_runtime
        type_problems = verify_types_against_runtime(type_report,
                                                     run.recorder)
    if args.json:
        payload["runtime_check"] = {"agrees": not problems,
                                    "problems": problems}
        if check_types:
            payload["runtime_check"]["type_contradictions"] = \
                type_problems
        print(json.dumps(payload, indent=2), file=out)
        return 1 if (problems or type_problems) else 0
    if problems:
        print("runtime fix map DISAGREES with the static analysis:",
              file=out)
        for p in problems:
            print("  - {}".format(p), file=out)
        return 1
    if type_problems:
        print("runtime events CONTRADICT the inferred types:", file=out)
        for p in type_problems:
            print("  - {}".format(p), file=out)
        return 1
    print("runtime fix map agrees with the static analysis.", file=out)
    if check_types:
        print("runtime events agree with the inferred types.", file=out)
    return 0


def _add_telemetry_run_args(ap: argparse.ArgumentParser) -> None:
    """The options shared by ``stats``/``trace``/``export``: what to
    run and over which input."""
    ap.add_argument("query",
                    help="query text, or a paper query name Q1..Q9")
    ap.add_argument("--input",
                    help="XML document to run over ('-' for stdin; "
                         "default for Q1..Q9: a synthesized dataset)")
    ap.add_argument("--events", action="store_true",
                    help="--input is the textual event-stream format")
    ap.add_argument("--mutable-source", action="store_true",
                    help="the input embeds updates; keep decisions "
                         "revocable")
    ap.add_argument("--scale", type=float, default=0.02,
                    help="scale of the synthesized dataset when no "
                         "--input is given (default 0.02)")
    ap.add_argument("--sample-interval", type=int, default=256,
                    help="source events between footprint samples "
                         "(default 256)")
    ap.add_argument("--projection", action="store_true",
                    help="prune irrelevant subtrees in the tokenizer; "
                         "the pruning counters land in the metrics JSON "
                         "(XML input only)")
    ap.add_argument("--schema",
                    help="schema refinement for --projection: 'xmark', "
                         "'dblp', or a DTD file path")
    ap.add_argument("--out", help="write the output here instead of "
                                  "stdout")


def build_telemetry_arg_parser(prog: str,
                               tracing: bool) -> argparse.ArgumentParser:
    what = ("update-provenance hops" if tracing
            else "per-stage pipeline metrics")
    ap = argparse.ArgumentParser(
        prog="repro {}".format(prog),
        description="Run a query with telemetry attached and print {} "
                    "as JSON.  Paper query names Q1..Q9 synthesize "
                    "their benchmark dataset when --input is omitted."
                    .format(what))
    _add_telemetry_run_args(ap)
    ap.add_argument("--indent", type=int, default=2,
                    help="JSON indentation (default 2)")
    if tracing:
        ap.add_argument("--format", choices=("json", "chrome"),
                        default="json",
                        help="output format: 'json' (native provenance "
                             "payload) or 'chrome' (Chrome trace-event /"
                             " Perfetto JSON; load in chrome://tracing "
                             "or ui.perfetto.dev)")
    return ap


def build_export_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro export",
        description="Run a query with telemetry attached and export "
                    "the recorded state in a standard format: 'trace' "
                    "emits Chrome trace-event / Perfetto JSON (one "
                    "track per stage, translations as flow arrows, "
                    "region lineage as async spans); 'metrics' emits "
                    "OpenMetrics / Prometheus text exposition, latency "
                    "histograms included.  Paper query names Q1..Q9 "
                    "synthesize their benchmark dataset when --input "
                    "is omitted.")
    ap.add_argument("what", choices=("trace", "metrics"),
                    help="which artifact to export")
    _add_telemetry_run_args(ap)
    ap.add_argument("--indent", type=int, default=2,
                    help="JSON indentation for trace output (default 2)")
    return ap


def export_main(argv, out, err) -> int:
    """``python -m repro export``: standard-format telemetry export."""
    import json
    args = build_export_arg_parser().parse_args(list(argv))
    tracing = args.what == "trace"
    code, run, _ = _run_with_telemetry(args, err, tracing)
    if run is None:
        return code
    metrics = run.metrics()
    if tracing:
        from .obs.export import stage_labels_from_metrics, \
            trace_to_chrome
        chrome = trace_to_chrome(
            metrics.pop("trace"),
            stage_labels=stage_labels_from_metrics(metrics))
        rendered = json.dumps(chrome, indent=args.indent)
    else:
        from .obs.export import metrics_to_openmetrics
        rendered = metrics_to_openmetrics(metrics).rstrip("\n")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(args.out, file=out)
    else:
        print(rendered, file=out)
    return 0


def _run_with_telemetry(args, err, tracing: bool):
    """Compile + run ``args.query`` with a recorder attached.

    Shared by the ``stats``/``trace``/``export`` subcommands: resolves
    paper query names, synthesizes the benchmark dataset when no input
    is given, applies ``--projection``, and runs to completion.
    Returns ``(exit_code, run, query_text)`` — ``run`` is ``None`` on
    failure.
    """
    from .bench.harness import PAPER_QUERIES, QUERY_DATASET
    query_text = _resolve_query_name(args.query, err)
    if query_text is None:
        return 2, None, None

    try:
        engine = XFlux(query_text, mutable_source=args.mutable_source)
        plan = engine.compile()
    except Exception as exc:
        print("error: {}".format(exc), file=err)
        return 2, None, None

    if args.input is not None:
        text = _read_text(args.input)
        events_mode = args.events
    elif args.query in PAPER_QUERIES:
        # Standalone mode: synthesize the query's benchmark dataset.
        if QUERY_DATASET[args.query] == "D":
            from .data.dblp import DBLPGenerator
            text = DBLPGenerator(scale=args.scale).text()
        else:
            from .data.xmark import XMarkGenerator
            text = XMarkGenerator(scale=args.scale).text()
        events_mode = False
    else:
        text = _read_text(None)  # stdin
        events_mode = args.events

    # The tokenizer is built explicitly (not via _event_source) so the
    # chunk-latency histogram can ride on it; it joins the recorder's
    # histogram map after the run, like the executors do.
    from .obs.histogram import TOKENIZER_CHUNK, LogHistogram
    tok = None
    if events_mode:
        events = iter_loads(text)
    else:
        tok = XMLTokenizer(emit_oids=plan.needs_oids)
        tok.chunk_histogram = LogHistogram()
        events = tok.tokenize(text)

    projection_counters = None
    if args.projection and not args.events:
        from .analysis.projection import (ProjectionMatcher,
                                          derive_projection)
        schema = args.schema
        if schema is None and args.input is None \
                and args.query in PAPER_QUERIES:
            # Synthesized benchmark datasets have a known shape.
            schema = ("dblp" if QUERY_DATASET[args.query] == "D"
                      else "xmark")
        try:
            matcher = ProjectionMatcher(derive_projection(plan),
                                        schema=schema)
        except ValueError as exc:
            print("error: {}".format(exc), file=err)
            return 2, None, None
        if matcher.prunable:
            tok = XMLTokenizer(projection=matcher)
            tok.chunk_histogram = LogHistogram()
            # Materialize so the counters are final before they are
            # snapshotted into the recorder below.
            events = list(tok.tokenize(text))
            projection_counters = tok.projection_stats.counter_dict()

    from .xquery.engine import QueryRun
    run = QueryRun(plan, metrics=True, trace=tracing,
                   sample_interval=args.sample_interval)
    if projection_counters is not None:
        run.recorder.projection = projection_counters
    try:
        run.feed_all(events)
        run.finish()
    except Exception as exc:
        print("error: {}".format(exc), file=err)
        return 1, None, None
    if tok is not None and run.recorder is not None:
        run.recorder.histograms[TOKENIZER_CHUNK] = tok.chunk_histogram
    return 0, run, query_text


def telemetry_main(argv, out, err, tracing: bool) -> int:
    """Shared driver of the ``stats`` and ``trace`` subcommands."""
    import json
    prog = "trace" if tracing else "stats"
    args = build_telemetry_arg_parser(prog, tracing).parse_args(
        list(argv))
    code, run, query_text = _run_with_telemetry(args, err, tracing)
    if run is None:
        return code

    metrics = run.metrics()
    if tracing and getattr(args, "format", "json") == "chrome":
        from .obs.export import stage_labels_from_metrics, \
            trace_to_chrome
        payload = trace_to_chrome(
            metrics.pop("trace"),
            stage_labels=stage_labels_from_metrics(metrics))
    elif tracing:
        payload = {
            "query": args.query,
            "query_text": query_text,
            "result": run.text(),
            "trace": metrics.pop("trace"),
            "metrics": metrics,
        }
    else:
        payload = {
            "query": args.query,
            "query_text": query_text,
            "result": run.text(),
            "metrics": metrics,
            "per_stage": run.pipeline.stage_accounts(),
        }
    rendered = json.dumps(payload, indent=args.indent)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print(args.out, file=out)
    else:
        print(rendered, file=out)
    return 0


def build_recover_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro recover",
        description="Rebuild a crashed run from its write-ahead log: "
                    "restore the newest valid checkpoint, replay the "
                    "logged frame suffix, and print the recovered "
                    "displays.  With --input the stream is also resumed "
                    "past the last logged frame, reproducing an "
                    "uninterrupted run byte for byte.")
    ap.add_argument("wal_dir", help="directory holding wal-*.seg files")
    ap.add_argument("--input",
                    help="re-supply the original document to resume "
                         "past the logged suffix ('-' for stdin)")
    ap.add_argument("--events", action="store_true",
                    help="--input is an event-per-line JSON stream, "
                         "not XML")
    ap.add_argument("--json", action="store_true",
                    help="print the full recovery report as JSON "
                         "instead of the recovered displays")
    ap.add_argument("--report-dir",
                    help="write recovery_report.json and the flight "
                         "bundle into this directory")
    ap.add_argument("--indent", type=int, default=2,
                    help="JSON indentation (default 2)")
    return ap


def recover_main(argv, out, err) -> int:
    """``python -m repro recover``: whole-process WAL recovery."""
    import json
    import os
    from .fault import RecoveryError, WalError, recover
    args = build_recover_arg_parser().parse_args(list(argv))
    text = None
    events = None
    if args.input is not None:
        raw = _read_text(args.input)
        if args.events:
            events = list(iter_loads(raw))
        else:
            text = raw
    try:
        result = recover(args.wal_dir, text=text, events=events)
    except (WalError, RecoveryError) as exc:
        detail = getattr(exc, "reason", None)
        print("error: {}{}".format(
            exc, " (reason={})".format(detail) if detail else ""),
            file=err)
        return 1
    except OSError as exc:
        print("error: {}".format(exc), file=err)
        return 1
    report = result.to_dict()
    if args.report_dir:
        from .obs.flightrec import write_bundle
        os.makedirs(args.report_dir, exist_ok=True)
        base = args.report_dir.rstrip("/")
        with open("{}/recovery_report.json".format(base), "w") as handle:
            json.dump(report, handle, indent=args.indent)
            handle.write("\n")
        if result.bundle is not None:
            write_bundle(result.bundle,
                         "{}/flightrec_recovery.json".format(base))
    if args.json:
        print(json.dumps(report, indent=args.indent), file=out)
    else:
        for i, text_out in enumerate(result.texts):
            status = result.statuses[i] if result.statuses else "ok"
            if status != "ok":
                print("[query {}: {}]".format(i, status), file=out)
            else:
                print(text_out if text_out is not None else "", file=out)
        print("recovered: {} frame(s) replayed, {} event(s) resumed"
              .format(report["frames_replayed"],
                      report["events_resumed"]), file=err)
    return 0


def _crash_child(wal_dir, queries, text, workers, batch_events,
                 checkpoint_every, mutable_source, crash_after):
    """Forked chaos --crash child: run durably, die by SIGKILL mid-log."""
    import os
    # Lead a fresh process group so the supervising parent can reap the
    # whole engine — the SIGKILL lands mid-flight, before this process
    # can clean up the shard workers it forked, and orphaned workers
    # would otherwise hold inherited pipe ends (stdout included) open
    # forever.
    os.setpgrp()
    if workers <= 1:
        from .xquery.engine import MultiQueryRun
        MultiQueryRun(queries, mutable_source=mutable_source).run_xml(
            text, durable=wal_dir, batch_events=batch_events,
            checkpoint_every=checkpoint_every,
            crash_after_frames=crash_after)
    else:
        from .parallel import ShardedMultiQueryRun
        smq = ShardedMultiQueryRun(
            queries, workers=workers, batch_events=batch_events,
            checkpoint_interval=checkpoint_every,
            mutable_source=mutable_source,
            durable_dir=wal_dir,
            durable_opts={"crash_after_frames": crash_after})
        smq.run_xml(text)


def chaos_crash_main(args, names, queries, text, out, err) -> int:
    """``repro chaos --crash``: SIGKILL the engine at seeded points,
    recover from the WAL, and assert byte-identity with a clean run."""
    import json
    import multiprocessing
    import os
    import shutil
    import tempfile
    from .fault import RecoveryError, WalError, recover
    from .xquery.engine import MultiQueryRun
    seeds = [int(s) for s in str(args.seeds).split(",") if s.strip()]
    clean = MultiQueryRun(queries, mutable_source=args.mutable_source)
    clean.run_xml(text)
    clean_texts, clean_statuses = clean.texts(), clean.statuses()
    n_events = len(tokenize(text, emit_oids=clean.needs_oids))
    total_frames = max(1, -(-n_events // args.batch_events))
    ctx = multiprocessing.get_context("fork")
    entries = []
    bundles = []
    failed = False
    for seed in seeds:
        crash_after = 1 + (seed * 2654435761) % total_frames
        work_dir = tempfile.mkdtemp(prefix="repro-crash-")
        wal_dir = os.path.join(work_dir, "wal")
        entry = {"seed": seed, "crash_after_frames": crash_after,
                 "workers": args.workers}
        try:
            proc = ctx.Process(
                target=_crash_child,
                args=(wal_dir, queries, text, args.workers,
                      args.batch_events, args.checkpoint_every,
                      args.mutable_source, crash_after))
            proc.start()
            proc.join()
            try:
                # Reap shard workers orphaned by the child's SIGKILL
                # (the child led its own process group, see
                # _crash_child).
                import signal as _signal
                os.killpg(proc.pid, _signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
            entry["exitcode"] = proc.exitcode
            if proc.exitcode != -9:
                entry["error"] = ("child exited {} instead of SIGKILL"
                                  .format(proc.exitcode))
                failed = True
                continue
            try:
                res = recover(wal_dir, text=text)
            except (WalError, RecoveryError) as exc:
                entry["error"] = str(exc)
                failed = True
                continue
            entry["frames_replayed"] = res.frames_replayed
            entry["events_resumed"] = res.events_resumed
            identical = (res.texts == clean_texts
                         and res.statuses == clean_statuses)
            entry["recovered_byte_identical"] = identical
            if res.bundle is not None:
                bundles.append(res.bundle)
            if not identical:
                entry["diverged"] = [
                    names[i] for i in range(len(names))
                    if res.texts[i] != clean_texts[i]
                    or res.statuses[i] != clean_statuses[i]]
                failed = True
        finally:
            entries.append(entry)
            shutil.rmtree(work_dir, ignore_errors=True)
    report = {
        "mode": "crash",
        "queries": names,
        "seeds": seeds,
        "total_frames": total_frames,
        "runs": entries,
        "all_recovered_byte_identical": not failed,
    }
    if args.report_dir:
        from .obs.flightrec import write_bundle
        os.makedirs(args.report_dir, exist_ok=True)
        base = args.report_dir.rstrip("/")
        files = []
        for n, bundle in enumerate(bundles):
            path = "{}/flightrec_recovery_{:03d}.json".format(base, n)
            write_bundle(bundle, path)
            files.append(path)
        report["flight_bundle_files"] = files
        with open("{}/crash_report.json".format(base), "w") as handle:
            json.dump(report, handle, indent=args.indent)
            handle.write("\n")
    print(json.dumps(report, indent=args.indent), file=out)
    if failed:
        print("error: crash recovery diverged from the clean run",
              file=err)
        return 1
    return 0


def build_chaos_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro chaos",
        description="Differential recovery proof: run a sharded "
                    "multi-query workload clean and again under a "
                    "fault plan, then verify every surviving query's "
                    "output is byte-identical.  Exits non-zero only "
                    "when ALL queries fail or a survivor's output "
                    "diverges.")
    ap.add_argument("--fault-plan",
                    help="fault spec, e.g. 'kill:shard=0,after=3' or "
                         "'corrupt:frame=5;raise:query=1,stage=0,at=99' "
                         "(see repro.fault for the grammar); required "
                         "unless --crash is given")
    ap.add_argument("--crash", action="store_true",
                    help="whole-process crash mode: run the workload "
                         "durably, SIGKILL the engine at a seeded "
                         "frame, then recover from the write-ahead log "
                         "and assert byte-identity with a clean run")
    ap.add_argument("--seeds", default="1",
                    help="comma-separated seeds for --crash; each seed "
                         "picks one crash frame (default: 1)")
    ap.add_argument("--checkpoint-every", type=int, default=4,
                    help="frames between checkpoints in --crash mode "
                         "(default 4)")
    ap.add_argument("--queries", default="Q1,Q2,Q5,Q7",
                    help="comma-separated paper query names or query "
                         "texts (default: Q1,Q2,Q5,Q7)")
    ap.add_argument("--input",
                    help="XML document to run over ('-' for stdin; "
                         "default: a synthesized XMark dataset)")
    ap.add_argument("--scale", type=float, default=0.05,
                    help="scale of the synthesized dataset when no "
                         "--input is given (default 0.05)")
    ap.add_argument("--workers", type=int, default=2,
                    help="shard worker count (default 2)")
    ap.add_argument("--batch-events", type=int, default=256,
                    help="events per broadcast frame (default 256, low "
                         "so faults land mid-stream)")
    ap.add_argument("--mutable-source", action="store_true",
                    help="the queries treat the input as mutable")
    ap.add_argument("--report-dir",
                    help="also write chaos_report.json (and one "
                         "quarantine report file per failed query) "
                         "into this directory")
    ap.add_argument("--indent", type=int, default=2,
                    help="JSON indentation (default 2)")
    return ap


def chaos_main(argv, out, err) -> int:
    """``python -m repro chaos``: scripted-fault differential runner."""
    import json
    import os
    from .bench.harness import PAPER_QUERIES
    from .fault import FaultPlan
    from .parallel import ShardedMultiQueryRun
    args = build_chaos_arg_parser().parse_args(list(argv))
    if not args.crash and args.fault_plan is None:
        print("error: --fault-plan is required unless --crash is given",
              file=err)
        return 2
    names = [q.strip() for q in args.queries.split(",") if q.strip()]
    queries = [PAPER_QUERIES.get(n, n) for n in names]
    if args.input is not None:
        text = _read_text(args.input)
    else:
        from .data.xmark import XMarkGenerator
        text = XMarkGenerator(scale=args.scale).text()
    if args.crash:
        return chaos_crash_main(args, names, queries, text, out, err)
    try:
        plan = FaultPlan.parse(args.fault_plan)
    except ValueError as exc:
        print("error: {}".format(exc), file=err)
        return 2

    def run(fault_plan):
        # The faulted run flies with the flight recorder on, so any
        # quarantine carries a post-mortem bundle; the clean reference
        # run stays at the env defaults.
        smq = ShardedMultiQueryRun(
            queries, workers=args.workers,
            batch_events=args.batch_events,
            mutable_source=args.mutable_source,
            fault_plan=fault_plan,
            flight=True if fault_plan is not None else None)
        smq.run_xml(text)
        return smq

    try:
        clean = run(None)
        faulted = run(plan)
    except Exception as exc:
        print("error: {}".format(exc), file=err)
        return 1

    # Post-mortem bundles: shard-recovery bundles (recorded on every
    # recovery action) plus any quarantine bundles riding the error
    # reports from the workers.
    bundles = list(faulted.flight_bundles())
    for rep in faulted.error_reports().values():
        if isinstance(rep, dict) and rep.get("flight_bundle"):
            bundles.append(rep["flight_bundle"])

    statuses = faulted.statuses()
    survivors_match = [
        None if status != "ok"
        else faulted.texts()[i] == clean.texts()[i]
        for i, status in enumerate(statuses)]
    diverged = [names[i] for i, m in enumerate(survivors_match)
                if m is False]
    all_failed = all(s != "ok" for s in statuses)
    report = {
        "fault_plan": plan.to_spec(),
        "queries": names,
        "statuses": statuses,
        "survivors_byte_identical": not diverged,
        "diverged": diverged,
        "fault_tolerance": faulted.fault_stats(),
        "error_reports": {names[i]: r for i, r
                          in faulted.error_reports().items()},
        "flight_bundles": len(bundles),
        "flight_bundle_reasons": [b.get("reason") for b in bundles],
    }
    bundle_files = []
    if args.report_dir:
        from .obs.flightrec import write_bundle
        os.makedirs(args.report_dir, exist_ok=True)
        base = args.report_dir.rstrip("/")
        for n, bundle in enumerate(bundles):
            path = "{}/flightrec_{:03d}.json".format(base, n)
            write_bundle(bundle, path)
            bundle_files.append(path)
        report["flight_bundle_files"] = bundle_files
    rendered = json.dumps(report, indent=args.indent)
    print(rendered, file=out)
    if args.report_dir:
        base = args.report_dir.rstrip("/")
        with open("{}/chaos_report.json".format(base), "w") as handle:
            handle.write(rendered + "\n")
        for i, rep in faulted.error_reports().items():
            path = "{}/quarantine_query_{}.json".format(base, i)
            with open(path, "w") as handle:
                json.dump({"query": names[i], "report": rep}, handle,
                          indent=args.indent)
                handle.write("\n")
    if diverged:
        print("error: surviving queries diverged: {}".format(
            ", ".join(diverged)), file=err)
        return 1
    if all_failed:
        print("error: all {} queries failed under the fault plan"
              .format(len(names)), file=err)
        return 1
    return 0


def build_bench_arg_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro bench",
        description="Record benchmark results as BENCH_queries.json / "
                    "BENCH_tokenize.json")
    ap.add_argument("--scale", type=float, default=0.1,
                    help="dataset scale factor (default 0.1)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repetitions; best is kept (default 3)")
    ap.add_argument("--out-dir", default=".",
                    help="directory for the JSON files (default: cwd)")
    ap.add_argument("--queries",
                    help="comma-separated subset, e.g. Q1,Q2 (default: "
                         "all nine)")
    ap.add_argument("--multiquery", action="store_true",
                    help="benchmark the multi-query executor instead "
                         "(sequential vs multiplexed vs sharded); writes "
                         "BENCH_multiquery.json")
    ap.add_argument("--memory", action="store_true",
                    help="record per-stage memory-footprint timelines "
                         "and the freeze on/off ablation instead; "
                         "writes BENCH_memory.json")
    ap.add_argument("--sample-interval", type=int, default=512,
                    help="source events between footprint samples for "
                         "--memory (default 512)")
    ap.add_argument("--workers", type=int, default=None,
                    help="process count for the sharded mode (default: "
                         "usable CPUs)")
    ap.add_argument("--fault", action="store_true",
                    help="benchmark recovery cost instead: clean vs "
                         "faulted sharded runs; writes BENCH_fault.json")
    ap.add_argument("--fault-plan",
                    help="fault spec for --fault (default: "
                         "kill:shard=0,after=3; see repro.fault)")
    ap.add_argument("--recovery", action="store_true",
                    help="benchmark durability cost instead: steady-"
                         "state write-ahead-log overhead and replay "
                         "time vs logged-suffix length; writes "
                         "BENCH_recovery.json")
    ap.add_argument("--projection", action="store_true",
                    help="benchmark stream projection instead: "
                         "off vs on per query, byte-identity verified; "
                         "writes BENCH_projection.json")
    ap.add_argument("--fusion", action="store_true",
                    help="benchmark the compile layers instead: "
                         "single-query fusion on/off plus the "
                         "multi-query baseline/fuse/share/both stack, "
                         "byte-identity verified; writes "
                         "BENCH_fusion.json")
    return ap


def bench_main(argv, out, err) -> int:
    from .bench.record import (write_bench_files, write_fault_file,
                               write_fusion_file, write_memory_file,
                               write_multiquery_file,
                               write_projection_file,
                               write_recovery_file)
    args = build_bench_arg_parser().parse_args(list(argv))
    queries = args.queries.split(",") if args.queries else None
    try:
        if args.recovery:
            paths = write_recovery_file(
                out_dir=args.out_dir, scale=args.scale,
                repeats=args.repeats, queries=queries, err=err)
        elif args.fusion:
            paths = write_fusion_file(
                out_dir=args.out_dir, scale=args.scale,
                repeats=args.repeats, queries=queries, err=err)
        elif args.projection:
            paths = write_projection_file(
                out_dir=args.out_dir, scale=args.scale,
                repeats=args.repeats, queries=queries, err=err)
        elif args.fault or args.fault_plan:
            paths = write_fault_file(
                out_dir=args.out_dir, scale=args.scale,
                repeats=args.repeats, workers=args.workers,
                queries=queries, fault_plan=args.fault_plan, err=err)
        elif args.memory:
            paths = write_memory_file(
                out_dir=args.out_dir, scale=args.scale,
                queries=queries,
                sample_interval=args.sample_interval, err=err)
        elif args.multiquery:
            paths = write_multiquery_file(
                out_dir=args.out_dir, scale=args.scale,
                repeats=args.repeats, workers=args.workers,
                queries=queries, err=err)
        else:
            paths = write_bench_files(out_dir=args.out_dir,
                                      scale=args.scale,
                                      repeats=args.repeats,
                                      queries=queries, err=err)
    except KeyError as exc:
        print("error: unknown query {} (expected Q1..Q9)".format(exc),
              file=err)
        return 2
    except ValueError as exc:
        print("error: {}".format(exc), file=err)
        return 2
    except OSError as exc:
        print("error: {}".format(exc), file=err)
        return 2
    for path in paths.values():
        print(path, file=out)
    return 0


def _read_text(path: Optional[str]) -> str:
    if path is None or path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _event_source(text: str, events_mode: bool, needs_oids: bool,
                  limits=None):
    if events_mode:
        return iter_loads(text)
    tok = XMLTokenizer(emit_oids=needs_oids, **(limits or {}))
    return tok.tokenize(text)


def _tokenizer_limits(args) -> dict:
    return {name: value for name, value in (
        ("max_depth", args.max_depth),
        ("max_token_bytes", args.max_token_bytes),
        ("max_attrs", args.max_attrs)) if value is not None}


def main(argv: Optional[Iterable[str]] = None,
         out=None, err=None) -> int:
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "bench":
        return bench_main(argv[1:], out, err)
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:], out, err)
    if argv and argv[0] == "analyze":
        return analyze_main(argv[1:], out, err)
    if argv and argv[0] == "stats":
        return telemetry_main(argv[1:], out, err, tracing=False)
    if argv and argv[0] == "trace":
        return telemetry_main(argv[1:], out, err, tracing=True)
    if argv and argv[0] == "export":
        return export_main(argv[1:], out, err)
    if argv and argv[0] == "recover":
        return recover_main(argv[1:], out, err)
    args = build_arg_parser().parse_args(argv)

    if args.query_file:
        query_text = _read_text(args.query_file)
        input_path = args.query if args.input is None else args.input
    else:
        if args.query is None:
            print("error: no query given (positional or --query-file)",
                  file=err)
            return 2
        query_text = args.query
        input_path = args.input

    try:
        engine = XFlux(query_text,
                       mutable_source=args.mutable_source,
                       ignore_updates=args.ignore_updates)
        plan = engine.compile()
    except Exception as exc:  # parse/compile diagnostics for the user
        print("error: {}".format(exc), file=err)
        return 2

    proj = None
    proj_tok = None
    if args.projection:
        if args.events:
            print("error: --projection applies to XML input, not "
                  "--events streams", file=err)
            return 2
        from .analysis.projection import (ProjectionMatcher,
                                          derive_projection)
        try:
            proj = derive_projection(plan)
            matcher = ProjectionMatcher(proj, schema=args.schema)
        except ValueError as exc:
            print("error: {}".format(exc), file=err)
            return 2
        if matcher.prunable:
            proj_tok = XMLTokenizer(projection=matcher,
                                    **_tokenizer_limits(args))

    text = _read_text(input_path)
    run = engine.start(sanitize=True if args.sanitize else None,
                       metrics=True if args.metrics else None,
                       fuse=True if args.fuse else None,
                       flight=True if args.flight else None)
    shown: Optional[str] = None
    source = (proj_tok.tokenize(text) if proj_tok is not None
              else _event_source(text, args.events, plan.needs_oids,
                                 limits=_tokenizer_limits(args)))
    try:
        for event in source:
            run.feed(event)
            if args.follow:
                current = run.text()
                if current != shown:
                    shown = current
                    print(current, file=out)
        run.finish()
    except Exception as exc:
        print("error: {}".format(exc), file=err)
        return 1
    if proj_tok is not None and run.recorder is not None:
        # Counters are final only now — the tokenizer streamed lazily.
        run.recorder.projection = proj_tok.projection_stats.counter_dict()

    final = run.text()
    if not args.follow or final != shown:
        print(final, file=out)
    if args.stats:
        stats = run.stats()
        print("transformer_calls={} state_cells={} stages={}".format(
            stats["transformer_calls"], stats["state_cells"],
            stats["stages"]), file=err)
        if proj_tok is not None:
            ps = proj_tok.projection_stats
            print("projection: events_pruned={} bytes_skipped={} "
                  "subtrees_skipped={} pruned_ratio={:.4f}".format(
                      ps.events_pruned, ps.bytes_skipped,
                      ps.subtrees_skipped, ps.pruned_ratio()), file=err)
        elif proj is not None:
            print("projection: universal ({})".format(
                proj.reason or "not prunable for this input"), file=err)
    if args.metrics:
        import json
        metrics = run.metrics()
        if metrics is not None:
            print(json.dumps(metrics, indent=2), file=err)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
