"""Durability benchmark (``BENCH_recovery.json``).

Two questions the write-ahead log raises, answered with numbers:

* **What does durability cost while nothing crashes?**  The same
  multi-query workload runs end-to-end twice per dataset — once plain,
  once journaling every frame through :class:`~repro.fault.wal.
  WriteAheadLog` ahead of dispatch — and the steady-state overhead is
  the ratio.  Both runs dispatch the stream to the engine in the same
  ``batch_events``-sized frames: a durable run *must* feed
  incrementally (a checkpoint can only cover frames the engine has
  applied), so a one-shot baseline would charge the journal for the
  generic cost of batched dispatch, which any streaming consumer pays
  with or without a log.  The one-shot time is still recorded
  (``plain_oneshot_secs``) so the batching cost itself stays visible.
  The acceptance bar is <= 10%: the log is an append-only buffered
  stream of frames the codec already produced, so the extra work is
  one memcpy and one ``write(2)`` per batch.
* **What does recovery cost, as a function of the replayed suffix?**
  A durable run is completed at several checkpoint cadences (never /
  sparse / dense) and then recovered cold from its log.  The fewer the
  checkpoints, the longer the logged suffix ``repro recover`` must
  replay; the table shows replay wall time growing with suffix length
  while the recovered output stays byte-identical throughout.

Both halves verify byte-identity against a plain uninterrupted run
before anything is written — a durability benchmark that silently
changed answers would be measuring a different program.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, Optional, Sequence

from ..fault.recover import recover
from ..fault.wal import list_segments
from ..xmlio import tokenize
from ..xquery.engine import MultiQueryRun
from .harness import (PAPER_QUERIES, Workloads, best_of, dataset_groups,
                      timed)

#: checkpoint cadences for the replay-cost table; 0 means "never"
#: (only the mandatory initial checkpoint is logged, so recovery
#: replays the entire stream).
REPLAY_CADENCES = (0, 16, 8)


def _log_bytes(directory: str) -> int:
    return sum(os.path.getsize(p) for p in list_segments(directory))


def _run_plain(texts, document: str) -> MultiQueryRun:
    mq = MultiQueryRun(texts)
    mq.run_xml(document)
    return mq


def _run_batched(texts, document: str, batch_events: int) -> MultiQueryRun:
    """Plain run at the durable path's dispatch granularity."""
    mq = MultiQueryRun(texts)
    events = list(tokenize(document, stream_id=mq.source_id,
                           emit_oids=mq.needs_oids))
    for start in range(0, len(events), batch_events):
        mq.feed_all(events[start:start + batch_events])
    mq.finish()
    return mq


def _run_durable(texts, document: str, wal_dir: str,
                 batch_events: int, checkpoint_every: int,
                 cost_factor: float = 9.0) -> MultiQueryRun:
    mq = MultiQueryRun(texts)
    mq.run_xml(document, durable=wal_dir, batch_events=batch_events,
               checkpoint_every=checkpoint_every,
               checkpoint_cost_factor=cost_factor)
    return mq


def bench_recovery(workloads: Workloads, repeats: int = 3,
                   queries: Optional[Sequence[str]] = None,
                   batch_events: int = 256,
                   checkpoint_every: int = 16) -> Dict:
    """Steady-state WAL overhead plus replay-cost-vs-suffix table."""
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    texts = {name: PAPER_QUERIES[name] for name in names}
    groups = dataset_groups(names)

    steady = []
    reference: Dict[str, list] = {}
    for dataset, group in groups:
        document = workloads.text(dataset)
        qtexts = [texts[n] for n in group]
        oneshot_secs, plain_mq = best_of(
            repeats, lambda: timed(lambda: _run_plain(qtexts, document)),
            key=lambda r: r[0])[1]
        reference[dataset] = plain_mq.texts()
        plain_secs, batched_mq = best_of(
            repeats, lambda: timed(lambda: _run_batched(
                qtexts, document, batch_events)),
            key=lambda r: r[0])[1]
        if batched_mq.texts() != reference[dataset]:
            raise AssertionError(
                "batched dispatch diverged from one-shot on dataset {}"
                .format(dataset))

        def durable_once():
            work = tempfile.mkdtemp(prefix="repro-bench-wal-")
            try:
                wal_dir = os.path.join(work, "wal")
                secs, mq = timed(lambda: _run_durable(
                    qtexts, document, wal_dir, batch_events,
                    checkpoint_every))
                return secs, mq.texts(), _log_bytes(wal_dir)
            finally:
                shutil.rmtree(work, ignore_errors=True)

        durable_secs, durable_texts, log_bytes = best_of(
            repeats, durable_once, key=lambda r: r[0])[1]
        if durable_texts != reference[dataset]:
            raise AssertionError(
                "durable run diverged from plain on dataset {}"
                .format(dataset))
        steady.append({
            "dataset": dataset,
            "queries": group,
            "plain_secs": round(plain_secs, 6),
            "plain_oneshot_secs": round(oneshot_secs, 6),
            "durable_secs": round(durable_secs, 6),
            "overhead_pct": round(
                (durable_secs / plain_secs - 1.0) * 100, 2)
            if plain_secs else None,
            "log_bytes": log_bytes,
            "input_bytes": len(document),
        })

    # Replay cost: complete durable runs at each checkpoint cadence on
    # the first dataset group, then recover cold from the log.  The
    # recovered run re-executes ``finish`` from the restored state, so
    # what grows with suffix length is exactly the replay loop.
    dataset, group = groups[0]
    document = workloads.text(dataset)
    qtexts = [texts[n] for n in group]
    replay_rows = []
    for cadence in REPLAY_CADENCES:
        effective = cadence if cadence > 0 else 1 << 30
        work = tempfile.mkdtemp(prefix="repro-bench-replay-")
        try:
            wal_dir = os.path.join(work, "wal")
            # cost_factor 0: the table wants the *exact* cadence so the
            # replayed suffix length is a controlled variable.
            _run_durable(qtexts, document, wal_dir, batch_events,
                         effective, cost_factor=0.0)

            def recover_once():
                return timed(lambda: recover(wal_dir, text=document))

            recover_secs, result = best_of(repeats, recover_once,
                                           key=lambda r: r[0])[1]
            if result.texts != reference[dataset]:
                raise AssertionError(
                    "recovery diverged from plain at cadence {}"
                    .format(cadence))
            replay_rows.append({
                "checkpoint_every": cadence or "never",
                "frames_replayed": result.frames_replayed,
                "events_resumed": result.events_resumed,
                "recover_secs": round(recover_secs, 6),
                "log_bytes": _log_bytes(wal_dir),
            })
        finally:
            shutil.rmtree(work, ignore_errors=True)

    worst = max((row["overhead_pct"] for row in steady
                 if row["overhead_pct"] is not None), default=None)
    return {
        "workload": {"queries": names,
                     "datasets": [d for d, _ in groups],
                     "batch_events": batch_events,
                     "checkpoint_every": checkpoint_every},
        "steady_state": steady,
        "worst_overhead_pct": worst,
        "overhead_within_budget": (worst is not None and worst <= 10.0),
        "replay": {"dataset": dataset, "queries": group,
                   "rows": replay_rows},
        "outputs_byte_identical": True,
    }
