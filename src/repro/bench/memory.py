"""Memory-footprint benchmark: per-stage trajectories + freeze ablation.

The paper's Section V claim is about *memory*, not speed: blocking
operators (count, sort, concat, predicate buffering) are unblocked with
a small footprint because ``freeze`` lets every stage drop the state it
kept for revocability.  End-of-run aggregates cannot show this — the
footprint matters while the stream flows — so this benchmark records,
for every paper query:

* the **per-stage footprint timeline** (state cells and live regions
  sampled every ``sample_interval`` source events) and its peaks, via
  the telemetry layer (:mod:`repro.obs`);
* a **freeze on/off ablation**: the same query and events with
  ``reclaim_on_freeze=False`` — freezes still flow and fix the
  mutability map, but no stage ever reclaims its per-region state
  copies.  The output stream is asserted byte-identical per run (the
  ablation only changes what is *retained*), and the footprint gap is
  the paper's claim, quantified.

Queries over plain documents still exercise the ablation: the compiler
allocates mutable regions for its own revocable decisions (predicates,
where clauses) and the pipeline freezes them as decisions become final,
so reclamation happens even with an update-free source.  The stock
workload adds a source-driven update stream where the effect compounds.

Results land in ``BENCH_memory.json`` (``python -m repro bench
--memory``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..data.stock import StockTicker
from ..xquery.engine import QueryRun, XFlux
from .harness import PAPER_QUERIES, QUERY_DATASET, Workloads

MEMORY_JSON = "BENCH_memory.json"

#: The stock-ticker continuous query used as the update-stream workload.
STOCK_QUERY = 'stream()//quote[name="IBM"]/price'


def _event_key(e) -> tuple:
    return (int(e.kind), e.id, e.sub, e.tag, e.text, e.oid)


def _observed_run(plan_query: str, events, mutable_source: bool,
                  sample_interval: int, reclaim: bool) -> QueryRun:
    engine = XFlux(plan_query, mutable_source=mutable_source)
    run = QueryRun(engine.compile(), metrics=True,
                   sample_interval=sample_interval,
                   reclaim_on_freeze=reclaim)
    run.feed_all(events)
    run.finish()
    return run


def _stage_summary(metrics: Dict, keep_samples: bool) -> List[Dict]:
    stages = []
    for sm in metrics["stages"]:
        row = {
            "label": sm["label"],
            "peak_cells": sm["peak_cells"],
            "peak_regions": sm["peak_regions"],
            "freezes": sm["freezes"],
            "cells_reclaimed": sm["cells_reclaimed"],
            "activated_at": sm["activated_at"],
        }
        if keep_samples:
            row["samples"] = sm["samples"]
        stages.append(row)
    return stages


def _ablation_row(name: str, query: str, events, mutable_source: bool,
                  sample_interval: int, keep_samples: bool) -> Dict:
    """One query, run twice (freeze reclamation on / off)."""
    run_on = _observed_run(query, events, mutable_source,
                           sample_interval, reclaim=True)
    run_off = _observed_run(query, events, mutable_source,
                            sample_interval, reclaim=False)
    # The ablation only changes retention — never the output stream.
    out_on = [_event_key(e) for e in run_on.display.events()]
    out_off = [_event_key(e) for e in run_off.display.events()]
    if out_on != out_off:
        raise AssertionError(
            "{}: freeze ablation changed the output stream "
            "({} vs {} events)".format(name, len(out_on), len(out_off)))
    m_on = run_on.metrics()
    m_off = run_off.metrics()
    peak_on = m_on["peak_cells_total"]
    peak_off = m_off["peak_cells_total"]
    return {
        "query": name,
        "xquery": query,
        "source_events": m_on["source_events"],
        "freeze_on": {
            "peak_cells": peak_on,
            "final_cells": run_on.stats()["state_cells"],
            "freezes": m_on["freezes_total"],
            "cells_reclaimed": m_on["cells_reclaimed_total"],
            "stages": _stage_summary(m_on, keep_samples),
        },
        "freeze_off": {
            "peak_cells": peak_off,
            "final_cells": run_off.stats()["state_cells"],
            "stages": _stage_summary(m_off, keep_samples=False),
        },
        "peak_reduction": (round(1.0 - peak_on / peak_off, 4)
                           if peak_off else 0.0),
        "output_identical": True,
    }


def bench_memory(workloads: Workloads,
                 queries: Optional[Sequence[str]] = None,
                 sample_interval: int = 512,
                 stock_updates: int = 400,
                 keep_samples: bool = True) -> Dict:
    """Footprint timelines + freeze ablation for Q1-Q9 and the ticker."""
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    rows = []
    for name in names:
        query = PAPER_QUERIES[name]
        dataset = QUERY_DATASET[name]
        plan = XFlux(query).compile()
        events = workloads.events(dataset, oids=plan.needs_oids)
        row = _ablation_row(name, query, events, mutable_source=False,
                            sample_interval=sample_interval,
                            keep_samples=keep_samples)
        row["dataset"] = dataset
        rows.append(row)
    ticker = StockTicker(n_updates=stock_updates).events()
    stock_row = _ablation_row("stock", STOCK_QUERY, ticker,
                              mutable_source=True,
                              sample_interval=max(1,
                                                  sample_interval // 8),
                              keep_samples=keep_samples)
    stock_row["dataset"] = "stock-ticker({} updates)".format(
        stock_updates)
    rows.append(stock_row)
    return {
        "sample_interval": sample_interval,
        "ablation": "reclaim_on_freeze False keeps every per-region "
                    "state copy resident; outputs asserted identical",
        "queries": rows,
    }
