"""Multi-query executor benchmark (``BENCH_multiquery.json``).

Measures the same workload three ways, end-to-end from document text to
final answers (tokenization included — that is the point):

* **sequential** — one independent ``XFlux(...).run_xml(...)`` per
  query, the pre-multiplexer serving model: N queries, N tokenizer
  passes;
* **multiplex** — one :class:`~repro.xquery.engine.MultiQueryRun` per
  dataset: a single tokenizer pass fanned out to all pipelines;
* **sharded** — :class:`~repro.parallel.ShardedMultiQueryRun` with the
  requested worker count, shard balancing fed by the sequential
  per-query times measured in the same run.

Every mode's per-query answers are compared byte-for-byte and the
verdict is recorded (``identical_outputs``) — a speedup that changes an
answer must fail loudly, not land in a JSON file.  The host CPU count is
recorded because it decides what sharding *can* deliver: with W usable
cores the sharded mode adds codec + process overhead to a critical path
of total_work / min(W, shards), so on a single-core host it cannot beat
the single-process multiplexer (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..parallel import ShardedMultiQueryRun, available_workers
from ..xquery.engine import MultiQueryRun, XFlux
from .harness import (PAPER_QUERIES, QUERY_DATASET, Workloads, best_of,
                      dataset_groups)


def bench_multiquery(workloads: Workloads, repeats: int = 3,
                     workers: Optional[int] = None,
                     queries: Optional[Sequence[str]] = None,
                     batch_events: int = 4096) -> Dict:
    """Run the three executor modes over the paper's query set."""
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    texts = {name: PAPER_QUERIES[name] for name in names}
    workers = workers if workers is not None else available_workers()
    groups = dataset_groups(names)

    # -- sequential: N independent engines, N tokenizer passes ------------
    seq_rows = []
    seq_outputs: Dict[str, str] = {}
    seq_total = 0.0
    for name in names:
        doc = workloads.text(QUERY_DATASET[name])
        query = texts[name]
        secs, run = best_of(repeats, lambda q=query, d=doc:
                            XFlux(q).run_xml(d))
        seq_outputs[name] = run.text()
        seq_total += secs
        seq_rows.append({"query": name, "dataset": QUERY_DATASET[name],
                         "secs": round(secs, 6)})
    weights = {name: row["secs"] for name, row in zip(names, seq_rows)}

    # -- multiplex: one pass per dataset, all pipelines at once -----------
    def run_multiplex():
        out = {}
        for dataset, group in groups:
            mq = MultiQueryRun([texts[n] for n in group])
            mq.run_xml(workloads.text(dataset))
            for n, answer in zip(group, mq.texts()):
                out[n] = answer
        return out

    mux_secs, mux_outputs = best_of(repeats, run_multiplex)

    # -- sharded: partition each dataset's queries across workers ---------
    shard_meta: Dict[str, object] = {}

    def run_sharded():
        out = {}
        bytes_shipped = frames = 0
        shards = []
        mode = None
        for dataset, group in groups:
            smq = ShardedMultiQueryRun(
                [texts[n] for n in group], workers=workers,
                weights=[weights[n] for n in group],
                batch_events=batch_events)
            smq.run_xml(workloads.text(dataset))
            stats = smq.stats()
            bytes_shipped += stats["bytes_shipped"]
            frames += stats["frames"]
            shards.append({dataset: [[group[i] for i in shard]
                                     for shard in stats["shards"]]})
            mode = stats["mode"]
            for n, answer in zip(group, smq.texts()):
                out[n] = answer
        shard_meta.update(bytes_shipped=bytes_shipped, frames=frames,
                          shards=shards, mode=mode)
        return out

    sharded_secs, sharded_outputs = best_of(repeats, run_sharded)

    identical = all(mux_outputs[n] == seq_outputs[n]
                    and sharded_outputs[n] == seq_outputs[n]
                    for n in names)
    if not identical:
        diverging = [n for n in names
                     if mux_outputs[n] != seq_outputs[n]
                     or sharded_outputs[n] != seq_outputs[n]]
        raise AssertionError(
            "executor modes disagree on {}".format(diverging))

    return {
        "workload": {"queries": names,
                     "datasets": [d for d, _ in groups]},
        "sequential": {"secs": round(seq_total, 6),
                       "per_query": seq_rows},
        "multiplex": {
            "secs": round(mux_secs, 6),
            "speedup_vs_sequential": round(seq_total / mux_secs, 3)
            if mux_secs else None,
        },
        "sharded": {
            "secs": round(sharded_secs, 6),
            "workers": workers,
            "mode": shard_meta.get("mode"),
            "shards": shard_meta.get("shards"),
            "frames": shard_meta.get("frames"),
            "bytes_shipped": shard_meta.get("bytes_shipped"),
            "batch_events": batch_events,
            "speedup_vs_sequential": round(seq_total / sharded_secs, 3)
            if sharded_secs else None,
            "speedup_vs_multiplex": round(mux_secs / sharded_secs, 3)
            if sharded_secs else None,
        },
        "identical_outputs": identical,
    }
