"""Stream-projection benchmark (``BENCH_projection.json``).

Measures what plan-driven projection (see ``repro/analysis/projection``
and DESIGN.md section 10) buys at the tokenizer: every query runs twice
from document text to final answer — projection off, then on — and the
two answers are compared byte-for-byte *before* anything is recorded.
A pruning win that changes an answer must fail loudly, not land in a
JSON file.

Three workload families exercise the three analysis regimes:

* **paper queries Q1-Q9** — descendant-axis paths, prunable only with
  the dataset schema (``//``-led paths could otherwise match anywhere);
  Q4-Q6 need OIDs and fall back to the universal projection by design;
* **child-axis companions P1/P2** — exact paths the analysis derives
  with no schema help; the tokenizer skips every sibling subtree, the
  pruning-heavy regime where scan-speed skipping should dominate;
* **stock ticker** — a mutable update stream: the analysis *must*
  return the universal projection (a skipped subtree could be the
  target of a later update), so the row records the fallback, not a
  speedup.

A multi-query section runs the XMark paper queries through one shared
:class:`~repro.xquery.engine.MultiQueryRun` with and without
projection, measuring the second integration layer: the union
projection feeds the shared tokenizer and per-query masks cut the
per-event fan-out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..xquery.engine import MultiQueryRun, XFlux
from .harness import (PAPER_QUERIES, QUERY_DATASET, Workloads, best_of,
                      dataset_groups)
from .memory import STOCK_QUERY

#: Child-axis companions to the paper queries (P = projection): exact
#: paths, schema-free pruning, large irrelevant-subtree fractions.
#: Engine child steps start at the root's *children* (the root element
#: consumes no step), hence no leading ``site``/``dblp`` component.
EXTRA_QUERIES: Dict[str, str] = {
    "P1": "X/regions/europe/item/quantity",
    "P2": "D/inproceedings/title",
}

EXTRA_DATASET = {"P1": "X", "P2": "D"}

#: Schema refinement per dataset (names resolved by ``known_schema``).
DATASET_SCHEMA = {"X": "xmark", "D": "dblp"}


def _query_row(workloads: Workloads, name: str, query: str,
               dataset: str, repeats: int) -> Dict:
    doc = workloads.text(dataset)
    schema = DATASET_SCHEMA[dataset]
    size_mb = len(doc) / 1e6

    off_secs, off_run = best_of(
        repeats, lambda: XFlux(query).run_xml(doc))
    on_secs, on_run = best_of(
        repeats,
        lambda: XFlux(query).run_xml(doc, projection=True, schema=schema))
    if on_run.text() != off_run.text():
        raise AssertionError(
            "projection changed the answer for {}".format(name))

    proj = on_run.projection
    stats = on_run.projection_stats
    return {
        "query": name,
        "xquery": query,
        "dataset": dataset,
        "schema": schema,
        "projection": proj.to_dict() if proj is not None else None,
        "pruning_active": stats is not None,
        "secs_off": round(off_secs, 6),
        "secs_on": round(on_secs, 6),
        "mb_per_s_off": round(size_mb / off_secs, 3) if off_secs else None,
        "mb_per_s_on": round(size_mb / on_secs, 3) if on_secs else None,
        "speedup": round(off_secs / on_secs, 3) if on_secs else None,
        "events_pruned_ratio": (round(stats.pruned_ratio(), 4)
                                if stats is not None else 0.0),
        "tokenizer": stats.to_dict() if stats is not None else None,
        "identical": True,
    }


def _ticker_row(repeats: int, stock_updates: int) -> Dict:
    from ..analysis.projection import derive_projection
    from ..data.stock import StockTicker

    plan = XFlux(STOCK_QUERY, mutable_source=True).compile()
    proj = derive_projection(plan)
    events = StockTicker(n_updates=stock_updates).events()
    secs, _ = best_of(
        repeats,
        lambda: XFlux(STOCK_QUERY, mutable_source=True).run(events))
    return {
        "query": "stock",
        "xquery": STOCK_QUERY,
        "dataset": "ticker",
        "projection": proj.to_dict(),
        "pruning_active": False,
        "secs": round(secs, 6),
        "events": len(events),
        "events_per_s": round(len(events) / secs) if secs else None,
        "note": ("mutable update stream: the analysis returns the "
                 "universal projection, because a subtree irrelevant "
                 "now may be the target of a later update"),
    }


def _multiquery_section(workloads: Workloads, names: Sequence[str],
                        repeats: int) -> Dict:
    texts = {n: PAPER_QUERIES[n] for n in names}
    groups = dataset_groups(names)

    def run_once(projection: bool):
        out: Dict[str, str] = {}
        summaries = []
        for dataset, group in groups:
            mq = MultiQueryRun(
                [texts[n] for n in group], projection=projection,
                schema=DATASET_SCHEMA[dataset] if projection else None)
            mq.run_xml(workloads.text(dataset))
            for n, answer in zip(group, mq.texts()):
                out[n] = answer
            if projection:
                summaries.append(mq.projection_summary())
        return out, summaries

    off_secs, (off_out, _) = best_of(repeats, lambda: run_once(False))
    on_secs, (on_out, summaries) = best_of(repeats,
                                           lambda: run_once(True))
    diverging = [n for n in names if on_out[n] != off_out[n]]
    if diverging:
        raise AssertionError(
            "multi-query projection changed answers for {}"
            .format(diverging))
    return {
        "queries": list(names),
        "secs_off": round(off_secs, 6),
        "secs_on": round(on_secs, 6),
        "speedup": round(off_secs / on_secs, 3) if on_secs else None,
        "mask_events_dropped": sum(s.get("mask_events_dropped", 0)
                                   for s in summaries),
        "tokenizer_pruning": [bool(s.get("tokenizer_pruning"))
                              for s in summaries],
        "identical": True,
    }


def bench_projection(workloads: Workloads, repeats: int = 3,
                     queries: Optional[Sequence[str]] = None,
                     stock_updates: int = 2000) -> Dict:
    """Projection-off versus projection-on over every workload family."""
    if queries is not None:
        names = list(queries)
    else:
        names = list(PAPER_QUERIES) + list(EXTRA_QUERIES)
    all_texts = dict(PAPER_QUERIES, **EXTRA_QUERIES)
    all_datasets = dict(QUERY_DATASET, **EXTRA_DATASET)

    rows: List[Dict] = []
    for name in names:
        rows.append(_query_row(workloads, name, all_texts[name],
                               all_datasets[name], repeats))

    paper_names = [n for n in names if n in PAPER_QUERIES
                   and QUERY_DATASET[n] == "X"]
    payload = {
        "queries": rows,
        "ticker": _ticker_row(repeats, stock_updates),
        "identical_outputs": True,
    }
    if paper_names:
        payload["multiquery"] = _multiquery_section(
            workloads, paper_names, repeats)

    pruned = [r for r in rows if r["pruning_active"]]
    payload["summary"] = {
        "pruning_active_queries": [r["query"] for r in pruned],
        "universal_fallback_queries": [
            r["query"] for r in rows
            if r["projection"] is not None and r["projection"]["universal"]],
        "best_speedup": max((r["speedup"] for r in pruned),
                            default=None),
        "best_speedup_query": max(
            pruned, key=lambda r: r["speedup"] or 0.0,
            default={"query": None})["query"],
    }
    return payload
