"""Machine-readable benchmark records (``BENCH_queries.json`` et al.).

The pytest-benchmark suite under ``benchmarks/`` is for exploring; this
module is for *tracking*: it writes two small JSON files capturing the
quantities the paper's tables report, so the perf trajectory of the
reproduction is diffable across PRs:

* ``BENCH_queries.json`` — per paper query (Q1–Q9): wall seconds,
  input events/s, MB/s, transformer calls (the paper's "events" column)
  and retained state cells;
* ``BENCH_tokenize.json`` — per dataset: size, event count, tokenize
  seconds for the production scanner and the character-level reference
  scanner it replaced.

Timing uses best-of-``repeats`` wall clock: the minimum is the least
noisy location statistic for a single-threaded CPU-bound loop.  Each run
records its scale/repeats so numbers from different configurations are
never compared silently.  Run via ``python -m repro bench``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

from ..xmlio.reference_tokenizer import ReferenceTokenizer
from ..xmlio.tokenizer import XMLTokenizer
from ..xquery.engine import QueryRun, XFlux
from .harness import (PAPER_QUERIES, QUERY_DATASET, Workloads, best_of,
                      timed)

QUERIES_JSON = "BENCH_queries.json"
TOKENIZE_JSON = "BENCH_tokenize.json"
MULTIQUERY_JSON = "BENCH_multiquery.json"
MEMORY_JSON = "BENCH_memory.json"
FAULT_JSON = "BENCH_fault.json"
PROJECTION_JSON = "BENCH_projection.json"
FUSION_JSON = "BENCH_fusion.json"
RECOVERY_JSON = "BENCH_recovery.json"


def _git_stamp() -> Dict:
    """The repo commit the numbers were taken at, plus a dirty flag.

    A benchmark JSON divorced from its commit is unanchored — the
    regression gate (benchmarks/compare.py) and any bisection need to
    know what tree produced the baseline.  Best effort: outside a git
    checkout (or without a git binary) both fields are ``None``.
    """
    import subprocess
    repo_dir = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_dir,
            capture_output=True, text=True, timeout=10)
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=repo_dir,
            capture_output=True, text=True, timeout=10)
        if sha.returncode != 0 or status.returncode != 0:
            return {"git_commit": None, "git_dirty": None}
        return {"git_commit": sha.stdout.strip(),
                "git_dirty": bool(status.stdout.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"git_commit": None, "git_dirty": None}


def _meta(workloads: Workloads, repeats: int) -> Dict:
    # Host facts ride in every record: numbers are not comparable
    # across machines, and the compile-layer env switches silently
    # change what "default flags" means for a run.
    from ..parallel import available_workers
    from ..xquery.engine import (_fuse_default, _metrics_default,
                                 _sanitize_default, _share_default)
    return {
        **_git_stamp(),
        "xmark_scale": workloads.xmark_scale,
        "dblp_scale": workloads.dblp_scale,
        "repeats": repeats,
        "timing": "best-of-repeats wall clock",
        "python": platform.python_version(),
        "cpus": available_workers(),
        "flags": {
            "fuse": _fuse_default(),
            "share_prefixes": _share_default(),
            "sanitize": _sanitize_default(),
            "metrics": _metrics_default(),
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def bench_queries(workloads: Workloads, repeats: int = 3,
                  queries: Optional[Sequence[str]] = None,
                  always_active: bool = False) -> Dict:
    """Time each paper query through the batched pipeline.

    With ``always_active=True`` the update-free fast path is disabled,
    which pins the per-stage transformer-call counts to the reference
    accounting (used to verify the "events" column is unchanged by the
    fast path).
    """
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    rows: List[Dict] = []
    for name in names:
        query = PAPER_QUERIES[name]
        dataset = QUERY_DATASET[name]
        engine = XFlux(query)
        plan = engine.compile()
        events = workloads.events(dataset, oids=plan.needs_oids)

        def attempt():
            # Compile outside the timed region: only feed + finish count.
            fresh = QueryRun(XFlux(query).compile(),
                             always_active=always_active)
            secs, _ = timed(lambda: (fresh.feed_all(events),
                                     fresh.finish()))
            return secs, fresh

        best, (_, run) = best_of(repeats, attempt, key=lambda r: r[0])
        stats = run.stats()
        size_mb = len(workloads.text(dataset)) / 1e6
        rows.append({
            "query": name,
            "xquery": query,
            "dataset": dataset,
            "secs": round(best, 6),
            "input_events": len(events),
            "events_per_s": round(len(events) / best) if best else None,
            "mb_per_s": round(size_mb / best, 3) if best else None,
            "transformer_calls": stats["transformer_calls"],
            "state_cells": stats["state_cells"],
            "result_len": len(run.text()),
        })
    return {"meta": dict(_meta(workloads, repeats),
                         always_active=always_active),
            "queries": rows}


def bench_tokenize(workloads: Workloads, repeats: int = 3) -> Dict:
    """Time the production and reference scanners over both datasets."""
    rows: List[Dict] = []
    for name, text in (("XMark", workloads.xmark_text),
                       ("DBLP", workloads.dblp_text)):
        timings = {}
        n_events = None
        for label, cls in (("secs", XMLTokenizer),
                           ("reference_secs", ReferenceTokenizer)):
            best, events = best_of(
                repeats, lambda c=cls: list(c().tokenize(text)))
            timings[label] = best
            n_events = len(events)
        rows.append({
            "dataset": name,
            "size_mb": round(len(text) / 1e6, 3),
            "events": n_events,
            "secs": round(timings["secs"], 6),
            "events_per_s": round(n_events / timings["secs"])
            if timings["secs"] else None,
            "reference_secs": round(timings["reference_secs"], 6),
            "speedup_vs_reference": round(
                timings["reference_secs"] / timings["secs"], 3)
            if timings["secs"] else None,
        })
    return {"meta": _meta(workloads, repeats), "datasets": rows}


def write_multiquery_file(out_dir: str = ".", scale: float = 0.1,
                          repeats: int = 3, workers: Optional[int] = None,
                          queries: Optional[Sequence[str]] = None,
                          err=None) -> Dict[str, str]:
    """Run the multi-query executor benchmark; returns the file path.

    The record carries the usable CPU count — sharded-mode numbers are
    meaningless without it (on one core the process pool can only add
    overhead; see EXPERIMENTS.md).
    """
    from .multiquery import bench_multiquery
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_multiquery(workloads, repeats=repeats,
                               workers=workers, queries=queries)
    payload = dict(meta=_meta(workloads, repeats), **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), MULTIQUERY_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {MULTIQUERY_JSON: path}


def write_fault_file(out_dir: str = ".", scale: float = 0.1,
                     repeats: int = 3, workers: Optional[int] = None,
                     queries: Optional[Sequence[str]] = None,
                     fault_plan: Optional[str] = None,
                     err=None) -> Dict[str, str]:
    """Run the fault-tolerance benchmark; returns the file path.

    Clean versus faulted sharded wall time, with the supervision
    counters (restarts, replayed frames, checkpoints) that explain the
    overhead.  The faulted run's surviving outputs are verified
    byte-identical to the clean run before anything is written.
    """
    from .fault import bench_fault
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_fault(workloads, repeats=repeats, workers=workers,
                          queries=queries, fault_plan=fault_plan)
    payload = dict(meta=_meta(workloads, repeats), **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), FAULT_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {FAULT_JSON: path}


def write_recovery_file(out_dir: str = ".", scale: float = 0.1,
                        repeats: int = 3,
                        queries: Optional[Sequence[str]] = None,
                        err=None) -> Dict[str, str]:
    """Run the durability benchmark; returns the file path.

    Steady-state write-ahead-log overhead (plain versus durable wall
    time per dataset, budget <= 10%) and a replay-cost table: cold
    recovery wall time against the length of the logged suffix at
    several checkpoint cadences.  Byte-identity against the plain run
    is verified before anything is written.
    """
    from .recovery import bench_recovery
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_recovery(workloads, repeats=repeats, queries=queries)
    payload = dict(meta=_meta(workloads, repeats), **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), RECOVERY_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {RECOVERY_JSON: path}


def write_projection_file(out_dir: str = ".", scale: float = 0.1,
                          repeats: int = 3,
                          queries: Optional[Sequence[str]] = None,
                          err=None) -> Dict[str, str]:
    """Run the stream-projection benchmark; returns the file path.

    Projection-off versus projection-on per query (paper queries plus
    the child-axis companions), the mutable-ticker universal fallback,
    and the multi-query union/mask layer.  Every on/off answer pair is
    verified byte-identical before anything is written.
    """
    from .projection import bench_projection
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_projection(workloads, repeats=repeats,
                               queries=queries)
    payload = dict(meta=_meta(workloads, repeats), **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), PROJECTION_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {PROJECTION_JSON: path}


def write_fusion_file(out_dir: str = ".", scale: float = 0.15,
                      repeats: int = 7,
                      queries: Optional[Sequence[str]] = None,
                      err=None) -> Dict[str, str]:
    """Run the compile-layer benchmark; returns the file path.

    Single-query fusion on/off (geomean over Q1–Q8) plus the
    multi-query stack — baseline / fuse / share / both / both with
    projection masks — interleaved per repetition.  Every row is
    verified byte-identical to the interpreted reference before
    anything is written.
    """
    from .fusion import bench_fusion
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_fusion(workloads, repeats=repeats, queries=queries)
    payload = dict(meta=_meta(workloads, repeats), **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), FUSION_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {FUSION_JSON: path}


def write_memory_file(out_dir: str = ".", scale: float = 0.1,
                      queries: Optional[Sequence[str]] = None,
                      sample_interval: int = 512,
                      keep_samples: bool = True,
                      err=None) -> Dict[str, str]:
    """Run the memory-footprint benchmark; returns the file path.

    No repeats: the recorded quantities (cells, regions, samples) are
    deterministic functions of the input stream, not wall-clock
    measurements.
    """
    from .memory import bench_memory
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    payload = bench_memory(workloads, queries=queries,
                           sample_interval=sample_interval,
                           keep_samples=keep_samples)
    payload = dict(meta=dict(_meta(workloads, repeats=1),
                             timing="deterministic cell counts"),
                   **payload)
    path = "{}/{}".format(out_dir.rstrip("/"), MEMORY_JSON)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    if err is not None:
        print("wrote {}".format(path), file=err)
    return {MEMORY_JSON: path}


def write_bench_files(out_dir: str = ".", scale: float = 0.1,
                      repeats: int = 3, queries: Optional[Sequence[str]]
                      = None, err=None) -> Dict[str, str]:
    """Run both benchmarks and write the JSON files; returns the paths."""
    os.makedirs(out_dir or ".", exist_ok=True)
    workloads = Workloads(xmark_scale=scale, dblp_scale=scale)
    paths = {}
    for fname, payload in (
            (QUERIES_JSON, bench_queries(workloads, repeats=repeats,
                                         queries=queries)),
            (TOKENIZE_JSON, bench_tokenize(workloads, repeats=repeats))):
        path = "{}/{}".format(out_dir.rstrip("/"), fname)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        paths[fname] = path
        if err is not None:
            print("wrote {}".format(path), file=err)
    return paths
