"""Benchmark harness reproducing the paper's evaluation tables."""

from .harness import (PAPER_QUERIES, QUERY_DATASET, SPEX_QUERIES,
                      DatasetStats, QueryStats, Workloads, format_report,
                      run_all, run_query)

__all__ = [
    "PAPER_QUERIES", "SPEX_QUERIES", "QUERY_DATASET",
    "Workloads", "DatasetStats", "QueryStats",
    "run_query", "run_all", "format_report",
]
