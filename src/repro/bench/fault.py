"""Fault-tolerance benchmark (``BENCH_fault.json``).

Answers the question section 9 of DESIGN.md leaves open: what does
recovery *cost*?  The same sharded workload runs twice, end-to-end from
document text to final answers:

* **clean** — :class:`~repro.parallel.ShardedMultiQueryRun` with no
  fault plan (supervision armed but idle: checkpoints are still taken
  and the frame journal still maintained, so this is the true steady
  price of being recoverable);
* **faulted** — the same run under a scripted fault plan (default: one
  worker killed after three frames), forcing a restart plus journal
  replay mid-stream.

Per-query answers of both runs are compared byte-for-byte for every
non-quarantined query — the recovery machinery's whole claim is that a
worker death is *invisible* in the output — and the supervision
counters (restarts, replayed frames, checkpoints, quarantines) are
recorded next to the wall-clock overhead they bought.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..fault import FaultPlan
from ..parallel import ShardedMultiQueryRun, available_workers
from .harness import (PAPER_QUERIES, Workloads, best_of, dataset_groups,
                      timed)

DEFAULT_FAULT_PLAN = "kill:shard=0,after=3"


def _run_once(workloads: Workloads, groups, texts: Dict[str, str],
              workers: int, batch_events: int,
              plan: Optional[FaultPlan]) -> Dict:
    outputs: Dict[str, Optional[str]] = {}
    statuses: Dict[str, str] = {}
    counters = {"restarts": 0, "replayed_frames": 0, "checkpoints": 0,
                "inline_takeovers": 0, "quarantined_queries": 0,
                "duplicates_dropped": 0}

    def go():
        for dataset, group in groups:
            smq = ShardedMultiQueryRun(
                [texts[n] for n in group], workers=workers,
                batch_events=batch_events, fault_plan=plan)
            smq.run_xml(workloads.text(dataset))
            for n, answer, status in zip(group, smq.texts(),
                                         smq.statuses()):
                outputs[n] = answer
                statuses[n] = status
            ft = smq.fault_stats()
            for key in counters:
                counters[key] += ft[key]

    secs, _ = timed(go)
    return {"secs": secs, "outputs": outputs, "statuses": statuses,
            "counters": counters}


def bench_fault(workloads: Workloads, repeats: int = 3,
                workers: Optional[int] = None,
                queries: Optional[Sequence[str]] = None,
                batch_events: int = 256,
                fault_plan: Optional[str] = None) -> Dict:
    """Clean-versus-faulted sharded runs over the paper's query set.

    ``batch_events`` defaults lower than the executor's 4096 so typical
    bench datasets span enough frames for the scripted fault (and a
    checkpoint or two) to actually land mid-stream.
    """
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    texts = {name: PAPER_QUERIES[name] for name in names}
    workers = workers if workers is not None else available_workers()
    groups = dataset_groups(names)
    plan = FaultPlan.parse(fault_plan if fault_plan is not None
                           else DEFAULT_FAULT_PLAN)

    by_secs = lambda r: r["secs"]  # noqa: E731 - ranking key, not a def
    _, clean = best_of(repeats, lambda: _run_once(
        workloads, groups, texts, workers, batch_events, None),
        key=by_secs)
    _, faulted = best_of(repeats, lambda: _run_once(
        workloads, groups, texts, workers, batch_events, plan),
        key=by_secs)

    diverging = [n for n in names
                 if faulted["statuses"][n] == "ok"
                 and faulted["outputs"][n] != clean["outputs"][n]]
    if diverging:
        raise AssertionError(
            "recovered outputs diverge from the clean run on {}"
            .format(diverging))

    return {
        "workload": {"queries": names,
                     "datasets": [d for d, _ in groups],
                     "workers": workers,
                     "batch_events": batch_events},
        "fault_plan": plan.to_spec(),
        "clean": {"secs": round(clean["secs"], 6),
                  "counters": clean["counters"]},
        "faulted": {
            "secs": round(faulted["secs"], 6),
            "counters": faulted["counters"],
            "statuses": [faulted["statuses"][n] for n in names],
            "overhead_vs_clean": round(
                faulted["secs"] / clean["secs"], 3)
            if clean["secs"] else None,
        },
        "surviving_outputs_identical": True,
        # False means the plan never landed (e.g. the stream spans
        # fewer frames than a kill threshold) — the comparison is then
        # clean-vs-clean and says nothing about recovery cost.
        "fault_effects_observed": any(
            faulted["counters"][k] for k in
            ("restarts", "replayed_frames", "inline_takeovers",
             "quarantined_queries", "duplicates_dropped")),
    }
