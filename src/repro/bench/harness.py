"""Benchmark harness: regenerate the paper's evaluation tables.

The paper's Section VII reports two tabulations:

* **Table 1 (datasets)** — document size, SAX event count, tokenize time
  for the XMark (X) and DBLP (D) documents;
* **Table 2 (queries)** — per benchmark query: XFlux execution time,
  throughput (MB/s), SPEX time where SPEX supports the query, the number
  of state-transformer calls ("events"), and retained memory.

This module measures the same quantities on the synthetic datasets (the
substitutions are documented in DESIGN.md): wall-clock times, transformer
dispatch counts from the pipeline wrappers, and retained state as counted
cells (transformer state copies + display regions/buffered events) — the
quantity Section V's mutability analysis bounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.spex import SpexEngine, SpexError
from ..data.dblp import DBLPGenerator
from ..data.xmark import XMarkGenerator
from ..events.model import Event
from ..xmlio.tokenizer import tokenize
from ..xquery.engine import XFlux

#: The paper's nine benchmark queries, verbatim (X = XMark, D = DBLP).
PAPER_QUERIES: Dict[str, str] = {
    "Q1": 'X//europe//item[location="Albania"]/quantity',
    "Q2": 'X//item[location="Albania"][payment="Cash"]/location',
    "Q3": 'X//*[location="Albania"]/quantity',
    "Q4": 'count(X//item[location="Albania"]/..)',
    "Q5": 'count(X//item[location="Albania"]/ancestor::europe)',
    "Q6": 'count(X//item[location="Albania"]/ancestor::*//location)',
    "Q7": ('<result>{ for $c in X//item where $c/location = "Albania" '
           'return <item>{ $c/quantity, $c/payment }</item> }</result>'),
    "Q8": 'D//inproceedings[author="John Smith"]/title',
    "Q9": ('for $d in D//inproceedings '
           'where contains($d/author,"Smith") order by $d/year '
           'return ($d/year/text(),": ",$d/title/text(),"\\n")'),
}

#: Queries the paper also runs on SPEX (dashes elsewhere in its table).
SPEX_QUERIES = ("Q1", "Q2", "Q3", "Q8")

#: Which dataset each query reads.
QUERY_DATASET = {q: ("D" if q in ("Q8", "Q9") else "X")
                 for q in PAPER_QUERIES}


def timed(fn):
    """Run ``fn`` once under the wall clock; returns (secs, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def best_of(repeats: int, fn, key=None):
    """Best-of-``repeats`` measurement; returns (best_metric, result).

    Without ``key``, each call is wall-clock timed around ``fn`` and the
    fastest call wins (the minimum is the least noisy location statistic
    for a CPU-bound loop).  With ``key``, ``fn`` measures itself — its
    return value is ranked by ``key(result)`` — for loops that must
    exclude setup from the timed region or rank by a self-reported
    metric.
    """
    best = None
    best_result = None
    for _ in range(repeats):
        if key is None:
            metric, result = timed(fn)
        else:
            result = fn()
            metric = key(result)
        if best is None or metric < best:
            best = metric
            best_result = result
    return best, best_result


def dataset_groups(names: Sequence[str]) -> List[tuple]:
    """Group query names by the dataset they read, stable order."""
    groups: Dict[str, List[str]] = {}
    for name in names:
        groups.setdefault(QUERY_DATASET[name], []).append(name)
    return sorted(groups.items())


@dataclass
class DatasetStats:
    """One row of the paper's dataset table."""
    name: str
    document: str
    size_mb: float
    events_m: float
    tokenize_secs: float

    def row(self) -> str:
        return "{:<8} {:>4} {:>9.2f} {:>9.3f} {:>9.3f}".format(
            self.name, self.document, self.size_mb, self.events_m,
            self.tokenize_secs)


@dataclass
class QueryStats:
    """One row of the paper's query table."""
    query: str
    xflux_secs: float
    mb_per_sec: float
    spex_secs: Optional[float]
    calls_m: float
    mem_cells: int
    result_preview: str = ""
    spex_matches: Optional[bool] = None

    def row(self) -> str:
        spex = ("{:>8.3f}".format(self.spex_secs)
                if self.spex_secs is not None else "       -")
        return ("{:<4} {:>9.3f} {:>7.2f} {} {:>9.3f} {:>10}"
                .format(self.query, self.xflux_secs, self.mb_per_sec,
                        spex, self.calls_m, self.mem_cells))


class Workloads:
    """Materialized datasets for one benchmark run."""

    def __init__(self, xmark_scale: float = 0.05,
                 dblp_scale: float = 0.05, seed: int = 42) -> None:
        self.xmark_scale = xmark_scale
        self.dblp_scale = dblp_scale
        self.xmark_text = XMarkGenerator(scale=xmark_scale,
                                         seed=seed).text()
        self.dblp_text = DBLPGenerator(scale=dblp_scale,
                                       seed=seed).text()
        self._event_cache: Dict[tuple, List[Event]] = {}

    def text(self, dataset: str) -> str:
        return self.xmark_text if dataset == "X" else self.dblp_text

    def events(self, dataset: str, oids: bool = False) -> List[Event]:
        key = (dataset, oids)
        if key not in self._event_cache:
            self._event_cache[key] = tokenize(self.text(dataset),
                                              emit_oids=oids)
        return self._event_cache[key]

    def dataset_stats(self) -> List[DatasetStats]:
        out = []
        for name, doc in (("XMark", "X"), ("DBLP", "D")):
            text = self.text(doc)
            secs, events = timed(lambda t=text: tokenize(t))
            out.append(DatasetStats(
                name=name, document=doc,
                size_mb=len(text) / 1e6,
                events_m=len(events) / 1e6,
                tokenize_secs=secs))
        return out


def run_query(workloads: Workloads, name: str,
              query: Optional[str] = None) -> QueryStats:
    """Execute one benchmark query on XFlux (and SPEX when supported)."""
    text = workloads.text(QUERY_DATASET.get(name, "X"))
    query = query if query is not None else PAPER_QUERIES[name]
    engine = XFlux(query)
    plan = engine.compile()
    events = workloads.events(QUERY_DATASET.get(name, "X"),
                              oids=plan.needs_oids)
    from ..xquery.engine import QueryRun
    run = QueryRun(plan)
    secs, _ = timed(lambda: (run.feed_all(events), run.finish()))
    stats = run.stats()
    mem = stats["state_cells"] + stats["display"]["peak_regions"]

    spex_secs: Optional[float] = None
    spex_matches: Optional[bool] = None
    if name in SPEX_QUERIES:
        try:
            spex = SpexEngine.from_query(query)
        except SpexError:
            spex = None
        if spex is not None:
            plain = workloads.events(QUERY_DATASET.get(name, "X"))
            spex_secs, _ = timed(lambda: spex.process_all(plain))
            spex_matches = spex.text() == run.text()

    return QueryStats(
        query=name,
        xflux_secs=secs,
        mb_per_sec=(len(text) / 1e6) / secs if secs > 0 else 0.0,
        spex_secs=spex_secs,
        calls_m=stats["transformer_calls"] / 1e6,
        mem_cells=mem,
        result_preview=run.text()[:60],
        spex_matches=spex_matches)


def run_all(workloads: Optional[Workloads] = None,
            queries: Optional[Sequence[str]] = None) -> List[QueryStats]:
    """Run the full benchmark suite; returns one row per query."""
    workloads = workloads if workloads is not None else Workloads()
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    return [run_query(workloads, name) for name in names]


def format_report(datasets: List[DatasetStats],
                  rows: List[QueryStats]) -> str:
    """Render both tables in the paper's layout."""
    lines = ["Datasets (paper Table 1 analogue)",
             "{:<8} {:>4} {:>9} {:>9} {:>9}".format(
                 "bench", "doc", "size MB", "events M", "time s")]
    lines.extend(d.row() for d in datasets)
    lines.append("")
    lines.append("Queries (paper Table 2 analogue)")
    lines.append("{:<4} {:>9} {:>7} {:>8} {:>9} {:>10}".format(
        "Q", "XFlux s", "MB/s", "SPEX s", "calls M", "mem cells"))
    lines.extend(r.row() for r in rows)
    return "\n".join(lines)
