"""Compile-layer benchmark (``BENCH_fusion.json``).

Measures the two flag-gated compile layers with every answer verified
byte-identical to the interpreted reference before anything is
written:

* **single-query stage fusion** — Q1–Q8 through the interpreted
  pipeline versus the fused drivers, with the geometric-mean speedup
  (the per-stage dispatch tax is what fusion removes, so the win is
  roughly uniform across queries);
* **multi-query compile stack** — the paper's standing-query workload
  per dataset under ``baseline`` (the plain multiplexer), ``fuse``,
  ``share`` (prefix-sharing only), ``both``, and ``both`` stacked with
  projection masks, with per-mode transformer-call counts and the
  shared-group breakdown.

Methodology: events are tokenized once per workload outside the timed
region (every mode consumes the identical list, so tokenizer cost
cannot dilute the engine-level ratios); construction/compilation is
outside the timed region; modes are *interleaved* within each
repetition so thermal drift hits all of them equally; the best of
``repeats`` is kept; the collector is quiesced and disabled around
each timed run.
"""

from __future__ import annotations

import gc
import math
import time
from typing import Dict, List, Optional, Sequence

from ..xmlio.tokenizer import tokenize
from ..xquery.engine import MultiQueryRun, QueryRun, XFlux
from .harness import (PAPER_QUERIES, QUERY_DATASET, Workloads,
                      dataset_groups)

#: Multi-query executor modes: label -> MultiQueryRun switches.  The
#: flags are always explicit so ambient REPRO_FUSE / REPRO_SHARE
#: settings cannot contaminate a mode's meaning.
_MODES: List[tuple] = [
    ("baseline", dict(fuse=False, share_prefixes=False)),
    ("fuse", dict(fuse=True, share_prefixes=False)),
    ("share", dict(fuse=False, share_prefixes=True)),
    ("both", dict(fuse=True, share_prefixes=True)),
    ("both_projection", dict(fuse=True, share_prefixes=True,
                             projection=True)),
]


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _geomean(values: Sequence[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_fusion(workloads: Workloads, repeats: int = 7,
                 queries: Optional[Sequence[str]] = None) -> Dict:
    """Run both parts; raises if any mode changes any answer."""
    names = list(queries) if queries is not None else list(PAPER_QUERIES)
    reference = {
        name: XFlux(PAPER_QUERIES[name]).run_xml(
            workloads.text(QUERY_DATASET[name])).text()
        for name in names}

    # -- part 1: single-query fusion on/off ------------------------------
    single_names = [n for n in names if n != "Q9"]
    single_rows: List[Dict] = []
    speedups: List[float] = []
    for name in single_names:
        query = PAPER_QUERIES[name]
        plan_probe = XFlux(query).compile()
        events = workloads.events(QUERY_DATASET[name],
                                  oids=plan_probe.needs_oids)
        best = {"off": float("inf"), "on": float("inf")}
        calls = {}
        for rep in range(repeats):
            for mode, fuse in (("off", False), ("on", True)):
                run = QueryRun(XFlux(query).compile(), fuse=fuse)
                secs = _timed(lambda r=run: (r.feed_all(events),
                                             r.finish()))
                best[mode] = min(best[mode], secs)
                if rep == 0:
                    if run.text() != reference[name]:
                        raise AssertionError(
                            "fusion={} changed {}'s answer".format(
                                fuse, name))
                    calls[mode] = run.stats()["transformer_calls"]
        # Fusion removes dispatch, never work — pin that here too.
        if calls["on"] != calls["off"]:
            raise AssertionError(
                "fusion changed {}'s transformer accounting".format(name))
        speedup = best["off"] / best["on"] if best["on"] else None
        if speedup:
            speedups.append(speedup)
        single_rows.append({
            "query": name,
            "dataset": QUERY_DATASET[name],
            "input_events": len(events),
            "interpreted_secs": round(best["off"], 6),
            "fused_secs": round(best["on"], 6),
            "speedup": round(speedup, 3) if speedup else None,
            "transformer_calls": calls["off"],
        })
    geomean = _geomean(speedups)

    # -- part 2: the multi-query compile stack ---------------------------
    groups = dataset_groups(names)
    mode_names = [m for m, _ in _MODES]
    per_dataset: List[Dict] = []
    totals = {m: 0.0 for m in mode_names}
    for dataset, group in groups:
        qtexts = [PAPER_QUERIES[n] for n in group]
        probe = MultiQueryRun(qtexts, fuse=False, share_prefixes=False)
        events = list(tokenize(workloads.text(dataset),
                               stream_id=probe.source_id,
                               emit_oids=probe.needs_oids))
        schema = "dblp" if dataset == "D" else "xmark"
        best = {m: float("inf") for m in mode_names}
        stats0: Dict[str, Dict] = {}
        for rep in range(repeats):
            for mode, kwargs in _MODES:
                if "projection" in kwargs:
                    kwargs = dict(kwargs, schema=schema)
                mq = MultiQueryRun(qtexts, **kwargs)
                secs = _timed(lambda m=mq: (m.feed_all(events),
                                            m.finish()))
                best[mode] = min(best[mode], secs)
                if rep == 0:
                    for n, text in zip(group, mq.texts()):
                        if text != reference[n]:
                            raise AssertionError(
                                "mode {} changed {}'s answer".format(
                                    mode, n))
                    stats0[mode] = mq.stats()
        row = {
            "dataset": dataset,
            "queries": group,
            "input_events": len(events),
            "modes": {
                mode: {
                    "secs": round(best[mode], 6),
                    "speedup_vs_baseline": round(
                        best["baseline"] / best[mode], 3)
                    if best[mode] else None,
                    "transformer_calls":
                        stats0[mode]["transformer_calls"],
                } for mode in mode_names},
        }
        sharing = stats0["both"].get("sharing")
        if sharing is not None:
            row["sharing"] = sharing
        per_dataset.append(row)
        for mode in mode_names:
            totals[mode] += best[mode]

    return {
        "single_query": {
            "queries": single_names,
            "rows": single_rows,
            "geomean_speedup": round(geomean, 3) if geomean else None,
        },
        "multi_query": {
            "modes": mode_names,
            "per_dataset": per_dataset,
            "total_secs": {m: round(totals[m], 6) for m in mode_names},
            "speedup_vs_baseline": {
                m: round(totals["baseline"] / totals[m], 3)
                for m in mode_names if totals[m]},
        },
        "identical_outputs": True,
    }
