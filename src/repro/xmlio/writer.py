"""Serialize event streams back to XML text.

Inverse of :mod:`repro.xmlio.tokenizer` for plain (update-free) streams:
``parse(write(events)) == events`` for well-formed input.  The writer is
also what the result display uses to render snapshots, so it tolerates
forests (multiple top-level nodes) and bare top-level text.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..events.model import CD, EE, ES, ET, SE, SS, ST, Event


def escape_text(text: str) -> str:
    """Escape character data for inclusion in XML text."""
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def write_events(events: Iterable[Event], stream_id: Optional[int] = None,
                 indent: Optional[str] = None) -> str:
    """Render the plain events of one stream as XML text.

    Args:
        events: the event sequence (update events are rejected).
        stream_id: when given, only events with this id are rendered;
            otherwise all regular data events are rendered.
        indent: optional indentation unit for pretty printing.

    Returns:
        the XML text (a forest is rendered as sibling elements).
    """
    parts: List[str] = []
    depth = 0
    for e in events:
        if e.is_update:
            raise ValueError(
                "write_events cannot render update event {}; apply the "
                "updates first (repro.core.regions.apply_updates)".format(e))
        if stream_id is not None and e.id != stream_id:
            continue
        if e.kind == SE:
            if indent is not None:
                parts.append("\n" + indent * depth if parts else
                             indent * depth)
            parts.append("<{}>".format(e.tag))
            depth += 1
        elif e.kind == EE:
            depth -= 1
            parts.append("</{}>".format(e.tag))
            if indent is not None and depth == 0:
                parts.append("\n")
        elif e.kind == CD:
            parts.append(escape_text(e.text or ""))
        elif e.kind in (SS, ES, ST, ET):
            continue
    return "".join(parts)
