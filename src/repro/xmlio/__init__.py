"""XML substrate: from-scratch tokenizer, writer, and mini-DOM."""

from .dom import (Element, Node, Text, forest_from_events, forest_to_xml,
                  parse)
from .tokenizer import (ResourceLimitError, XMLSyntaxError, XMLTokenizer,
                        iter_tokenize, tokenize)
from .writer import escape_text, write_events

__all__ = [
    "XMLTokenizer", "XMLSyntaxError", "ResourceLimitError",
    "tokenize", "iter_tokenize",
    "write_events", "escape_text",
    "Node", "Element", "Text", "parse", "forest_from_events",
    "forest_to_xml",
]
