"""A from-scratch streaming XML tokenizer.

This is the SAX substitute the engine is built on: it turns XML text into
the paper's event vocabulary (``sS``, ``sE``, ``cD``, ``eE``, ``eS``) without
ever materializing a tree.  It is deliberately self-contained (no
``xml.sax``): the paper's substrate is a SAX parser, and building it from
scratch keeps the reproduction dependency-free and lets the benchmark
harness count raw tokenization work the same way the paper's Table 1 does.

Supported XML subset (ample for the paper's workloads):

* elements with attributes (attributes are surfaced as hooks; by default
  they are ignored, matching the paper's event model which has no attribute
  events),
* character data with the five predefined entities plus numeric character
  references,
* comments, processing instructions and DOCTYPE (skipped),
* CDATA sections.

The tokenizer is incremental: feed it arbitrary chunks with :meth:`feed`;
it yields events as soon as they are complete, so it can sit behind a
socket or a file of unbounded size.

Scanning strategy: construct delimiters (``<``, ``-->``, ``]]>``, ``?>``)
are located with ``str.find`` and whole tags are matched with compiled
regular expressions, so the per-character work happens in C.  The mode
machine survives chunk boundaries — a regex that fails on a partial
construct simply leaves the bytes buffered for the next ``feed``.  The
original character-level scanner is preserved verbatim in
:mod:`repro.xmlio.reference_tokenizer` as the differential-testing oracle.
"""

from __future__ import annotations

import re
from time import perf_counter_ns
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..events.model import (Event, cdata, end_element, end_stream,
                            start_element, start_stream)


class XMLSyntaxError(ValueError):
    """Raised on malformed XML input."""

    def __init__(self, message: str, offset: int) -> None:
        super().__init__("{} (at byte offset {})".format(message, offset))
        self.offset = offset


class ResourceLimitError(XMLSyntaxError):
    """A configured ingest resource limit was exceeded.

    The poison-input guard: hostile documents — element depth bombs,
    multi-megabyte attributes, unbounded text runs — raise this
    structured error the moment the configured budget is crossed,
    instead of driving the process into unbounded memory growth or
    deep-recursion abuse downstream.  ``limit_name`` is the
    constructor keyword that tripped (``"max_depth"``,
    ``"max_token_bytes"``, ``"max_attrs"``), ``limit`` its configured
    value, ``actual`` the observed size.
    """

    def __init__(self, message: str, offset: int, limit_name: str,
                 limit: int, actual: int) -> None:
        super().__init__(
            "{} ({}={}, observed {})".format(message, limit_name,
                                             limit, actual), offset)
        self.limit_name = limit_name
        self.limit = limit
        self.actual = actual


_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

# Fast-path tag patterns.  A start tag without attributes and an end tag
# are by far the most common constructs (XMark/DBLP markup is attribute
# light), and both can be recognized with a single anchored match instead
# of find + slice + character loop.  The patterns are deliberately strict:
# anything they reject (attributes, exotic whitespace, malformed tags,
# constructs truncated at a chunk boundary) falls through to the general
# scanner, which reproduces the original character-level semantics and
# error messages exactly.
_STAG_RE = re.compile(r"<([^\s<>/!?=][^\s<>/=]*)\s*(/?)>")
_ETAG_RE = re.compile(r"</([^\s<>/=]+)\s*>")
# Attribute scanning within a tag body: name up to the first '=' (the
# non-greedy quantifier reproduces the reference scanner's find('=')
# semantics), then a quoted value.
_TAG_NAME_RE = re.compile(r"\S+")
_ATTR_RE = re.compile(r"\s*([^=]+?)=\s*(?:\"([^\"]*)\"|'([^']*)')")

# Parser modes.
_TEXT = 0
_MARKUP = 1       # saw '<', gathering until the construct is classified
_COMMENT = 2
_CDATA_SECT = 3
_PI = 4
_DOCTYPE = 5
_SKIP = 6         # inside a projection-pruned subtree: raw scan, no events

# Sub-modes of the _SKIP scan (the same construct machine, event-free).
_SK_TEXT = 0
_SK_COMMENT = 1
_SK_CDATA = 2
_SK_PI = 3
_SK_BANG = 4      # DOCTYPE-ish "<!...": scan to '>'

# Projection matcher verdicts (mirrors repro.analysis.projection — kept
# as literals here so the tokenizer never imports the analysis package).
_PRUNE_SKIP = 0
_PRUNE_KEEP = 1
_PRUNE_ACCEPT = 2


class XMLTokenizer:
    """Incremental XML-to-event tokenizer.

    Args:
        stream_id: the stream number stamped on emitted events.
        emit_oids: when True, sE/eE/cD events carry a document-order node
            identity (``oid``) as required by backward axes (Section VI-E).
        keep_whitespace: when False (default), character data that is pure
            whitespace between elements is dropped, like the paper's
            tokenizer which reports 12.7M events for 224MB of XMark.
        attribute_handler: optional callback ``(tag, name, value) -> None``
            invoked for each attribute (the event model has no attribute
            events; the XMark generator does not rely on attributes).
            With a projection installed the handler only fires for kept
            elements.
        projection: optional :class:`~repro.analysis.projection.\
ProjectionMatcher`.  When a start tag opens a subtree no remaining
            path step can match, the tokenizer drops into a raw
            depth-tracking scan that still verifies tag nesting but never
            materializes events; ``projection_stats`` counts what was
            pruned.  Inside skipped subtrees only tag structure is
            checked — attribute syntax and entity references there go
            unvalidated (they can never influence any query).  Mutually
            exclusive with ``emit_oids`` (skipping would renumber the
            document-order identities backward axes rely on).
        max_depth: maximum open-element nesting depth (pruned subtrees
            included).  A depth bomb raises a structured
            :class:`ResourceLimitError` at the limit instead of growing
            the element stack without bound.  ``None`` (default): off.
        max_token_bytes: maximum bytes buffered for one incomplete
            markup construct (a giant tag or attribute spanning feed
            chunks) or one pending character-data run.  Checked after
            every :meth:`feed`, so cross-chunk accumulation stops at
            the limit with a structured error.  ``None``: off.
        max_attrs: maximum attributes on a single element.  ``None``:
            off.
    """

    def __init__(self, stream_id: int = 0, emit_oids: bool = False,
                 keep_whitespace: bool = False,
                 attribute_handler: Optional[
                     Callable[[str, str, str], None]] = None,
                 projection=None,
                 max_depth: Optional[int] = None,
                 max_token_bytes: Optional[int] = None,
                 max_attrs: Optional[int] = None) -> None:
        self.stream_id = stream_id
        self.emit_oids = emit_oids
        self.keep_whitespace = keep_whitespace
        self.attribute_handler = attribute_handler
        self.max_depth = max_depth
        self.max_token_bytes = max_token_bytes
        self.max_attrs = max_attrs
        if projection is not None:
            if emit_oids:
                raise ValueError(
                    "projection cannot be combined with emit_oids: "
                    "skipping subtrees would renumber document-order "
                    "oids")
            from ..analysis.projection import ProjectionStats
            self._cursor = projection.cursor()
            self.projection_stats = ProjectionStats()
        else:
            self._cursor = None
            self.projection_stats = None
        #: Optional :class:`~repro.obs.histogram.LogHistogram` recording
        #: per-feed() scan latency.  Installed at the executor level
        #: (like ``projection_stats``) so a shared tokenizer is timed
        #: once regardless of consumer count; None costs one ``is not
        #: None`` test per chunk.
        self.chunk_histogram = None
        self._buf = ""
        self._mode = _TEXT
        self._offset = 0
        self._text_size = 0             # bytes pending in _text_parts
        self._stack: List[Tuple[str, Optional[int]]] = []
        self._next_oid = 0
        self._started = False
        self._finished = False
        self._text_parts: List[str] = []
        self._keep_depth = 0            # inside an accepted subtree
        self._skip_stack: List[str] = []  # open tags of the pruned subtree
        self._skip_sub = _SK_TEXT
        self._skip_pending = False      # pruned text accumulated
        self._skip_nonws = False        # ... containing non-whitespace

    # -- public API --------------------------------------------------------

    def feed(self, chunk: str) -> List[Event]:
        """Consume a chunk of XML text; return the newly completed events."""
        if self._finished:
            raise XMLSyntaxError("feed() after close()", self._offset)
        hist = self.chunk_histogram
        t0 = perf_counter_ns() if hist is not None else 0
        self._buf += chunk
        out: List[Event] = []
        if not self._started:
            self._started = True
            out.append(start_stream(self.stream_id))
        self._scan(out)
        if self.max_token_bytes is not None:
            self._check_token_bytes()
        if self.projection_stats is not None:
            self.projection_stats.events_emitted += len(out)
        if hist is not None:
            hist.record(perf_counter_ns() - t0)
        return out

    def close(self) -> List[Event]:
        """Signal end of input; return the trailing events (incl. eS)."""
        if self._finished:
            return []
        self._finished = True
        out: List[Event] = []
        if not self._started:
            self._started = True
            out.append(start_stream(self.stream_id))
        if self._mode != _TEXT or self._buf:
            if self._buf.strip() or self._mode != _TEXT:
                raise XMLSyntaxError("unexpected end of input", self._offset)
        self._flush_text(out)
        if self._stack:
            raise XMLSyntaxError(
                "input ended with unclosed elements: {}".format(
                    [t for t, _ in self._stack]), self._offset)
        out.append(end_stream(self.stream_id))
        if self.projection_stats is not None:
            self.projection_stats.events_emitted += len(out)
        return out

    def tokenize(self, text: str) -> Iterator[Event]:
        """One-shot convenience: tokenize a complete document."""
        yield from self.feed(text)
        yield from self.close()

    # -- resource guards ---------------------------------------------------

    def _check_depth(self) -> None:
        """Guard one element push against ``max_depth``."""
        depth = len(self._stack) + len(self._skip_stack)
        if depth >= self.max_depth:
            raise ResourceLimitError(
                "element nesting exceeds the configured depth limit",
                self._offset, "max_depth", self.max_depth, depth + 1)

    def _check_token_bytes(self) -> None:
        """Post-feed guard: no buffered construct outgrows the budget.

        Two accumulation vectors are bounded: the raw buffer holding one
        incomplete markup construct (a tag or attribute that never
        closes keeps growing across feeds), and the pending
        character-data run (text accumulates in ``_text_parts`` until
        the next markup flushes it).
        """
        limit = self.max_token_bytes
        if len(self._buf) > limit:
            raise ResourceLimitError(
                "buffered markup construct exceeds the token budget",
                self._offset, "max_token_bytes", limit, len(self._buf))
        if self._text_size > limit:
            raise ResourceLimitError(
                "buffered character data exceeds the token budget",
                self._offset, "max_token_bytes", limit, self._text_size)

    # -- scanning ----------------------------------------------------------

    def _scan(self, out: List[Event]) -> None:
        buf = self._buf
        pos = 0
        n = len(buf)
        while pos < n:
            if self._mode == _TEXT:
                lt = buf.find("<", pos)
                if lt < 0:
                    self._text_parts.append((False, buf[pos:]))
                    self._text_size += n - pos
                    pos = n
                    break
                if lt > pos:
                    self._text_parts.append((False, buf[pos:lt]))
                    self._text_size += lt - pos
                pos = lt
                self._mode = _MARKUP
            elif self._mode == _MARKUP:
                consumed = self._scan_markup(buf, pos, out)
                if consumed is None:
                    break
                pos = consumed
            elif self._mode == _COMMENT:
                end = buf.find("-->", pos)
                if end < 0:
                    pos = max(pos, n - 2)
                    break
                pos = end + 3
                self._mode = _TEXT
            elif self._mode == _CDATA_SECT:
                end = buf.find("]]>", pos)
                if end < 0:
                    if n - 2 > pos:
                        self._text_parts.append((True, buf[pos:n - 2]))
                        self._text_size += n - 2 - pos
                    pos = max(pos, n - 2)
                    break
                self._text_parts.append((True, buf[pos:end]))
                self._text_size += end - pos
                pos = end + 3
                self._mode = _TEXT
            elif self._mode == _PI:
                end = buf.find("?>", pos)
                if end < 0:
                    pos = max(pos, n - 1)
                    break
                pos = end + 2
                self._mode = _TEXT
            elif self._mode == _DOCTYPE:
                end = buf.find(">", pos)
                if end < 0:
                    pos = n
                    break
                pos = end + 1
                self._mode = _TEXT
            elif self._mode == _SKIP:
                new_pos = self._scan_skip(buf, pos)
                self.projection_stats.bytes_skipped += new_pos - pos
                pos = new_pos
                if self._mode == _SKIP and pos < n:
                    break  # incomplete construct: wait for more input
        self._offset += pos
        self._buf = buf[pos:]

    def _scan_markup(self, buf: str, pos: int,
                     out: List[Event]) -> Optional[int]:
        """Classify and consume one markup construct starting at '<'.

        Returns the new position, or None when more input is needed.
        """
        # Fast paths: a plain (attribute-free) start tag or an end tag is
        # recognized and emitted with one anchored regex match.  A failed
        # match — attributes, truncation at a chunk boundary, malformed
        # input — falls through to the general classifier below, which is
        # authoritative for semantics and error reporting.
        m = _STAG_RE.match(buf, pos)
        if m is not None:
            if self._text_parts:
                self._flush_text(out)
            tag = m.group(1)
            if self._cursor is not None and \
                    not self._project_open(tag, bool(m.group(2)),
                                           m.end() - pos):
                if self._mode != _SKIP:
                    self._mode = _TEXT  # pruned self-closing element
                return m.end()
            if self.emit_oids:
                oid = self._next_oid
                self._next_oid += 1
            else:
                oid = None
            out.append(start_element(self.stream_id, tag, oid=oid))
            if m.group(2):  # self-closing
                out.append(end_element(self.stream_id, tag, oid=oid))
            else:
                if self.max_depth is not None:
                    self._check_depth()
                self._stack.append((tag, oid))
            self._mode = _TEXT
            return m.end()
        m = _ETAG_RE.match(buf, pos)
        if m is not None:
            if self._text_parts:
                self._flush_text(out)
            self._end_tag(m.group(1), out)
            self._mode = _TEXT
            return m.end()
        n = len(buf)
        if pos + 1 >= n:
            return None
        c = buf[pos + 1]
        if c == "!":
            if buf.startswith("<!--", pos):
                self._flush_text(out)
                self._mode = _COMMENT
                return pos + 4
            if buf.startswith("<![CDATA[", pos):
                self._mode = _CDATA_SECT
                return pos + 9
            if n - pos < 9:
                return None  # cannot classify "<!..." yet
            self._flush_text(out)
            self._mode = _DOCTYPE
            return pos + 2
        if c == "?":
            self._flush_text(out)
            self._mode = _PI
            return pos + 2
        gt = buf.find(">", pos)
        if gt < 0:
            return None
        raw = buf[pos + 1:gt]
        if self.max_token_bytes is not None and len(raw) > self.max_token_bytes:
            raise ResourceLimitError(
                "markup construct exceeds the token budget",
                self._offset, "max_token_bytes", self.max_token_bytes,
                len(raw))
        self._flush_text(out)
        if raw.startswith("/"):
            self._end_tag(raw[1:].strip(), out)
        elif raw.endswith("/"):
            if self._start_tag(raw[:-1], out, nbytes=gt + 1 - pos,
                               selfclosing=True):
                self._pop_tag(out)
        else:
            self._start_tag(raw, out, nbytes=gt + 1 - pos)
        if self._mode != _SKIP:
            self._mode = _TEXT
        return gt + 1

    # -- element handling ----------------------------------------------------

    def _start_tag(self, raw: str, out: List[Event], nbytes: int = 0,
                   selfclosing: bool = False) -> bool:
        """Handle a start tag body; returns False when projected away."""
        tag, attrs = _split_tag(raw, self._offset)
        if not tag:
            raise XMLSyntaxError("empty tag name", self._offset)
        if self.max_attrs is not None and len(attrs) > self.max_attrs:
            raise ResourceLimitError(
                "element <{}> exceeds the attribute limit".format(tag),
                self._offset, "max_attrs", self.max_attrs, len(attrs))
        if self._cursor is not None and \
                not self._project_open(tag, selfclosing, nbytes):
            return False
        if self.attribute_handler is not None:
            for name, value in attrs:
                self.attribute_handler(tag, name, value)
        oid = self._take_oid()
        if self.max_depth is not None:
            self._check_depth()
        self._stack.append((tag, oid))
        out.append(start_element(self.stream_id, tag, oid=oid))
        return True

    def _end_tag(self, tag: str, out: List[Event]) -> None:
        if not self._stack:
            raise XMLSyntaxError(
                "closing tag </{}> with no open element".format(tag),
                self._offset)
        open_tag, oid = self._stack[-1]
        if open_tag != tag:
            raise XMLSyntaxError(
                "closing tag </{}> does not match <{}>".format(
                    tag, open_tag), self._offset)
        self._stack.pop()
        if self._cursor is not None:
            if self._keep_depth:
                self._keep_depth -= 1
            else:
                self._cursor.leave()
        out.append(end_element(self.stream_id, tag, oid=oid))

    def _pop_tag(self, out: List[Event]) -> None:
        tag, oid = self._stack.pop()
        out.append(end_element(self.stream_id, tag, oid=oid))

    def _flush_text(self, out: List[Event]) -> None:
        if not self._text_parts:
            return
        # Enforced here as well as post-feed so the budget is
        # chunking-independent: a text run larger than the budget trips
        # whether it arrived in one feed or accumulated across many.
        if self.max_token_bytes is not None \
                and self._text_size > self.max_token_bytes:
            raise ResourceLimitError(
                "character data run exceeds the token budget",
                self._offset, "max_token_bytes", self.max_token_bytes,
                self._text_size)
        parts = self._text_parts
        self._text_parts = []
        self._text_size = 0
        # CDATA-section segments are literal; only plain character data
        # gets entity decoding (runs are joined first so an entity split
        # across feed() chunks still decodes).  Single-segment flushes —
        # the overwhelmingly common case when whole constructs arrive in
        # one chunk — skip the merge machinery.
        if len(parts) == 1:
            is_cdata, seg = parts[0]
            text = seg if is_cdata else _decode_entities(seg, self._offset)
        else:
            text = "".join(
                seg if is_cdata else _decode_entities(seg, self._offset)
                for is_cdata, seg in _merge_runs(parts))
        if not self._stack:
            if text.strip():
                raise XMLSyntaxError(
                    "character data outside the root element", self._offset)
            return
        if not self.keep_whitespace and not text.strip():
            return
        out.append(cdata(self.stream_id, text, oid=self._take_oid()))

    def _take_oid(self) -> Optional[int]:
        if not self.emit_oids:
            return None
        oid = self._next_oid
        self._next_oid += 1
        return oid

    # -- projection (subtree skipping) ---------------------------------------

    def _project_open(self, tag: str, selfclosing: bool,
                      nbytes: int) -> bool:
        """Consult the projection matcher for an opening tag.

        Returns True when the element is kept (the caller emits it
        normally), False when it is pruned — in which case the tokenizer
        either consumed a self-closing element in place or switched to
        the raw _SKIP scan for the whole subtree.
        """
        if self._keep_depth:
            # Inside an accepted subtree: everything is kept verbatim and
            # the cursor is not consulted (only the depth is tracked).
            if not selfclosing:
                self._keep_depth += 1
            return True
        verdict = self._cursor.enter(tag)
        if verdict == _PRUNE_KEEP:
            if selfclosing:
                self._cursor.leave()
            return True
        if verdict == _PRUNE_ACCEPT:
            if not selfclosing:
                self._keep_depth = 1
            return True
        # SKIP: the subtree is provably irrelevant to every query.
        stats = self.projection_stats
        stats.bytes_skipped += nbytes
        if selfclosing:
            stats.events_pruned += 2  # the sE/eE pair
            stats.subtrees_skipped += 1
        else:
            stats.events_pruned += 1  # the sE; the eE counts on close
            if self.max_depth is not None:
                self._check_depth()
            self._skip_stack.append(tag)
            self._skip_sub = _SK_TEXT
            self._mode = _SKIP
        return False

    def _scan_skip(self, buf: str, pos: int) -> int:
        """Raw depth-tracking scan inside a pruned subtree.

        Verifies tag nesting and construct well-formedness but emits no
        events; counts what would have been emitted.  Returns the new
        position; leaves ``self._mode`` at _SKIP when more input is
        needed mid-construct, or back at _TEXT once the pruned subtree's
        matching end tag has been consumed.
        """
        n = len(buf)
        stats = self.projection_stats
        while pos < n:
            sub = self._skip_sub
            if sub == _SK_TEXT:
                lt = buf.find("<", pos)
                if lt < 0:
                    self._skip_note_text(buf[pos:])
                    return n
                if lt > pos:
                    self._skip_note_text(buf[pos:lt])
                pos = lt
                if pos + 1 >= n:
                    return pos  # lone '<' at the buffer end
                c = buf[pos + 1]
                if c == "/":
                    gt = buf.find(">", pos)
                    if gt < 0:
                        return pos
                    self._skip_close(buf[pos + 2:gt].strip())
                    pos = gt + 1
                    if self._mode != _SKIP:
                        return pos
                elif c == "!":
                    if buf.startswith("<!--", pos):
                        self._skip_flush_text()
                        self._skip_sub = _SK_COMMENT
                        pos += 4
                    elif buf.startswith("<![CDATA[", pos):
                        self._skip_sub = _SK_CDATA
                        pos += 9
                    elif n - pos < 9:
                        return pos  # cannot classify "<!..." yet
                    else:
                        self._skip_flush_text()
                        self._skip_sub = _SK_BANG
                        pos += 2
                elif c == "?":
                    self._skip_flush_text()
                    self._skip_sub = _SK_PI
                    pos += 2
                else:
                    gt = buf.find(">", pos)
                    if gt < 0:
                        return pos
                    raw = buf[pos + 1:gt].strip()
                    self._skip_flush_text()
                    selfclosing = raw.endswith("/")
                    if selfclosing:
                        raw = raw[:-1].strip()
                    tag = raw.split(None, 1)[0] if raw else ""
                    if not tag:
                        raise XMLSyntaxError("empty tag name", self._offset)
                    if selfclosing:
                        stats.events_pruned += 2
                    else:
                        stats.events_pruned += 1
                        if self.max_depth is not None:
                            self._check_depth()
                        self._skip_stack.append(tag)
                    pos = gt + 1
            elif sub == _SK_COMMENT:
                end = buf.find("-->", pos)
                if end < 0:
                    return max(pos, n - 2)
                pos = end + 3
                self._skip_sub = _SK_TEXT
            elif sub == _SK_CDATA:
                end = buf.find("]]>", pos)
                if end < 0:
                    if n - 2 > pos:
                        self._skip_note_text(buf[pos:n - 2], cdata=True)
                    return max(pos, n - 2)
                self._skip_note_text(buf[pos:end], cdata=True)
                pos = end + 3
                self._skip_sub = _SK_TEXT
            elif sub == _SK_PI:
                end = buf.find("?>", pos)
                if end < 0:
                    return max(pos, n - 1)
                pos = end + 2
                self._skip_sub = _SK_TEXT
            else:  # _SK_BANG
                end = buf.find(">", pos)
                if end < 0:
                    return n
                pos = end + 1
                self._skip_sub = _SK_TEXT
        return pos

    def _skip_note_text(self, seg: str, cdata: bool = False) -> None:
        """Track pruned character data (counter bookkeeping only)."""
        if seg or cdata:
            self._skip_pending = True
            if seg and not seg.isspace():
                self._skip_nonws = True

    def _skip_flush_text(self) -> None:
        """Count one pruned cD, mirroring the main scanner's flush rule."""
        if self._skip_pending and (self._skip_nonws or self.keep_whitespace):
            self.projection_stats.events_pruned += 1
        self._skip_pending = False
        self._skip_nonws = False

    def _skip_close(self, tag: str) -> None:
        """Consume a closing tag inside the pruned subtree."""
        self._skip_flush_text()
        open_tag = self._skip_stack[-1]
        if open_tag != tag:
            raise XMLSyntaxError(
                "closing tag </{}> does not match <{}>".format(
                    tag, open_tag), self._offset)
        self._skip_stack.pop()
        self.projection_stats.events_pruned += 1
        if not self._skip_stack:
            self.projection_stats.subtrees_skipped += 1
            self._mode = _TEXT


def _merge_runs(parts):
    """Coalesce adjacent segments of the same kind (cdata vs plain)."""
    merged: List[Tuple[bool, str]] = []
    for is_cdata, seg in parts:
        if merged and merged[-1][0] == is_cdata:
            merged[-1] = (is_cdata, merged[-1][1] + seg)
        else:
            merged.append((is_cdata, seg))
    return merged


def _split_tag(raw: str, offset: int) -> Tuple[str, List[Tuple[str, str]]]:
    """Split '<tag a="1" b="2"' body into (tag, [(name, value), ...])."""
    raw = raw.strip()
    if not raw:
        return "", []
    m = _TAG_NAME_RE.match(raw)
    tag = m.group()
    i = m.end()
    n = len(raw)
    attrs: List[Tuple[str, str]] = []
    while i < n:
        am = _ATTR_RE.match(raw, i)
        if am is None:
            if raw[i:].isspace():
                break
            # Malformed: re-parse character by character for the exact
            # diagnostic the reference scanner produces.
            _split_attrs_slow(raw, i, tag, attrs, offset)
            break
        name, dq, sq = am.groups()
        attrs.append((name.strip(),
                      _decode_entities(dq if dq is not None else sq, offset)))
        i = am.end()
    return tag, attrs


def _split_attrs_slow(raw: str, i: int, tag: str,
                      attrs: List[Tuple[str, str]], offset: int) -> None:
    """Character-level attribute parse (error cases and oddities only)."""
    n = len(raw)
    while i < n:
        while i < n and raw[i].isspace():
            i += 1
        if i >= n:
            break
        eq = raw.find("=", i)
        if eq < 0:
            raise XMLSyntaxError(
                "malformed attribute in <{}>".format(tag), offset)
        name = raw[i:eq].strip()
        j = eq + 1
        while j < n and raw[j].isspace():
            j += 1
        if j >= n or raw[j] not in "\"'":
            raise XMLSyntaxError(
                "unquoted attribute value in <{}>".format(tag), offset)
        quote = raw[j]
        end = raw.find(quote, j + 1)
        if end < 0:
            raise XMLSyntaxError(
                "unterminated attribute value in <{}>".format(tag), offset)
        attrs.append((name, _decode_entities(raw[j + 1:end], offset)))
        i = end + 1


def _decode_entities(text: str, offset: int) -> str:
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        amp = text.find("&", i)
        if amp < 0:
            out.append(text[i:])
            break
        out.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0 or semi - amp > 10:
            raise XMLSyntaxError("unterminated entity reference", offset)
        name = text[amp + 1:semi]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(
                "unknown entity &{};".format(name), offset)
        i = semi + 1
    return "".join(out)


def tokenize(text: str, stream_id: int = 0, emit_oids: bool = False,
             keep_whitespace: bool = False, projection=None,
             **limits) -> List[Event]:
    """Tokenize a complete XML document into a list of events.

    ``limits`` (``max_depth`` / ``max_token_bytes`` / ``max_attrs``)
    pass through to :class:`XMLTokenizer`.
    """
    tok = XMLTokenizer(stream_id=stream_id, emit_oids=emit_oids,
                       keep_whitespace=keep_whitespace,
                       projection=projection, **limits)
    return list(tok.tokenize(text))


def iter_tokenize(chunks: Iterable[str], stream_id: int = 0,
                  emit_oids: bool = False,
                  keep_whitespace: bool = False,
                  projection=None, **limits) -> Iterator[Event]:
    """Tokenize XML arriving in chunks, yielding events incrementally."""
    tok = XMLTokenizer(stream_id=stream_id, emit_oids=emit_oids,
                       keep_whitespace=keep_whitespace,
                       projection=projection, **limits)
    for chunk in chunks:
        yield from tok.feed(chunk)
    yield from tok.close()
