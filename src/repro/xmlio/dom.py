"""A minimal in-memory XML tree (the reproduction's own mini-DOM).

Used by the naive (blocking) baseline evaluator, by the eager
update-application oracle, and throughout the test-suite to state
"streaming result == tree result" properties.  It is intentionally small:
elements, text nodes, parent pointers, document order.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

from ..events.model import CD, EE, SE, Event, cdata, end_element, \
    start_element
from .tokenizer import tokenize
from .writer import escape_text


class Node:
    """Common base for tree nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional["Element"] = None

    # Subclasses implement: string_value, to_xml, to_events.

    def ancestors(self) -> Iterator["Element"]:
        """Proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node


class Text(Node):
    """A character-data node."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    @property
    def string_value(self) -> str:
        return self.text

    def to_xml(self) -> str:
        return escape_text(self.text)

    def to_events(self, stream_id: int = 0) -> List[Event]:
        return [cdata(stream_id, self.text)]

    def copy(self) -> "Text":
        return Text(self.text)

    def __repr__(self) -> str:
        return "Text({!r})".format(self.text)


class Element(Node):
    """An element node with ordered children."""

    __slots__ = ("tag", "children")

    def __init__(self, tag: str,
                 children: Optional[Sequence[Union["Element", Text,
                                                   str]]] = None) -> None:
        super().__init__()
        self.tag = tag
        self.children: List[Node] = []
        for child in children or ():
            self.append(child)

    def append(self, child: Union["Element", Text, str]) -> "Element":
        """Append a child (bare strings become Text nodes); returns self."""
        node = Text(child) if isinstance(child, str) else child
        node.parent = self
        self.children.append(node)
        return self

    @property
    def string_value(self) -> str:
        """XPath string-value: concatenation of all descendant text."""
        return "".join(c.string_value for c in self.children)

    def child_elements(self, tag: Optional[str] = None) -> List["Element"]:
        """Element children, optionally filtered by tag."""
        return [c for c in self.children
                if isinstance(c, Element) and (tag is None or c.tag == tag)]

    def descendants_or_self(self) -> Iterator["Element"]:
        """All element descendants including self, in document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.descendants_or_self()

    def descendants(self, tag: Optional[str] = None) -> List["Element"]:
        """Proper element descendants in document order, optional tag."""
        out: List[Element] = []
        for child in self.children:
            if isinstance(child, Element):
                for d in child.descendants_or_self():
                    if tag is None or d.tag == tag:
                        out.append(d)
        return out

    def to_xml(self) -> str:
        inner = "".join(c.to_xml() for c in self.children)
        return "<{0}>{1}</{0}>".format(self.tag, inner)

    def to_events(self, stream_id: int = 0) -> List[Event]:
        out = [start_element(stream_id, self.tag)]
        for child in self.children:
            out.extend(child.to_events(stream_id))
        out.append(end_element(stream_id, self.tag))
        return out

    def copy(self) -> "Element":
        el = Element(self.tag)
        for child in self.children:
            el.append(child.copy())  # type: ignore[arg-type]
        return el

    def __repr__(self) -> str:
        return "Element({!r}, {} children)".format(self.tag,
                                                   len(self.children))


def parse(text: str) -> Element:
    """Parse an XML document string into an :class:`Element` tree."""
    roots = forest_from_events(tokenize(text))
    elements = [r for r in roots if isinstance(r, Element)]
    if len(elements) != 1:
        raise ValueError("expected exactly one root element, got {}"
                         .format(len(elements)))
    return elements[0]


def forest_from_events(events: Sequence[Event],
                       stream_id: Optional[int] = None) -> List[Node]:
    """Build a forest from plain sE/cD/eE events (sS/eS/sT/eT ignored).

    Args:
        events: the event sequence; must not contain update events.
        stream_id: when given, only that stream's events are materialized.
    """
    roots: List[Node] = []
    stack: List[Element] = []
    for e in events:
        if e.is_update:
            raise ValueError("forest_from_events saw update event {}; "
                             "apply updates first".format(e))
        if stream_id is not None and e.id != stream_id:
            continue
        if e.kind == SE:
            el = Element(e.tag or "")
            if stack:
                stack[-1].append(el)
            else:
                roots.append(el)
            stack.append(el)
        elif e.kind == EE:
            if not stack or stack[-1].tag != (e.tag or ""):
                raise ValueError("unbalanced events at {}".format(e))
            stack.pop()
        elif e.kind == CD:
            node = Text(e.text or "")
            if stack:
                stack[-1].append(node)
            else:
                roots.append(node)
    if stack:
        raise ValueError("events ended with open elements")
    return roots


def forest_to_xml(forest: Sequence[Node]) -> str:
    """Serialize a forest (e.g. a query result sequence) to XML text."""
    return "".join(n.to_xml() for n in forest)
