"""Reference scanner: the original character-level streaming tokenizer.

This is the pre-optimization :class:`~repro.xmlio.tokenizer.XMLTokenizer`
kept verbatim as an executable specification.  The production tokenizer
replaced the per-character Python loops with compiled-regex scanning; the
differential tests (``tests/test_tokenizer_chunks.py``) feed identical
documents — split at every chunk boundary — through both scanners and
assert event-for-event equality, so any behavioural drift in the fast
scanner is caught against this one.

Do not optimize this module.  Its value is being obviously correct and
independent of the production implementation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..events.model import (Event, cdata, end_element, end_stream,
                            start_element, start_stream)
from .tokenizer import _ENTITIES, XMLSyntaxError

# Parser modes.
_TEXT = 0
_MARKUP = 1       # saw '<', gathering until the construct is classified
_COMMENT = 2
_CDATA_SECT = 3
_PI = 4
_DOCTYPE = 5


class ReferenceTokenizer:
    """Incremental XML-to-event tokenizer (character-level reference).

    Same public contract as :class:`~repro.xmlio.tokenizer.XMLTokenizer`;
    see that class for the argument documentation.
    """

    def __init__(self, stream_id: int = 0, emit_oids: bool = False,
                 keep_whitespace: bool = False,
                 attribute_handler: Optional[
                     Callable[[str, str, str], None]] = None) -> None:
        self.stream_id = stream_id
        self.emit_oids = emit_oids
        self.keep_whitespace = keep_whitespace
        self.attribute_handler = attribute_handler
        self._buf = ""
        self._mode = _TEXT
        self._offset = 0
        self._stack: List[Tuple[str, Optional[int]]] = []
        self._next_oid = 0
        self._started = False
        self._finished = False
        self._text_parts: List[str] = []

    # -- public API --------------------------------------------------------

    def feed(self, chunk: str) -> List[Event]:
        """Consume a chunk of XML text; return the newly completed events."""
        if self._finished:
            raise XMLSyntaxError("feed() after close()", self._offset)
        self._buf += chunk
        out: List[Event] = []
        if not self._started:
            self._started = True
            out.append(start_stream(self.stream_id))
        self._scan(out)
        return out

    def close(self) -> List[Event]:
        """Signal end of input; return the trailing events (incl. eS)."""
        if self._finished:
            return []
        self._finished = True
        out: List[Event] = []
        if not self._started:
            self._started = True
            out.append(start_stream(self.stream_id))
        if self._mode != _TEXT or self._buf:
            if self._buf.strip() or self._mode != _TEXT:
                raise XMLSyntaxError("unexpected end of input", self._offset)
        self._flush_text(out)
        if self._stack:
            raise XMLSyntaxError(
                "input ended with unclosed elements: {}".format(
                    [t for t, _ in self._stack]), self._offset)
        out.append(end_stream(self.stream_id))
        return out

    def tokenize(self, text: str) -> Iterator[Event]:
        """One-shot convenience: tokenize a complete document."""
        yield from self.feed(text)
        yield from self.close()

    # -- scanning ----------------------------------------------------------

    def _scan(self, out: List[Event]) -> None:
        buf = self._buf
        pos = 0
        n = len(buf)
        while pos < n:
            if self._mode == _TEXT:
                lt = buf.find("<", pos)
                if lt < 0:
                    self._text_parts.append((False, buf[pos:]))
                    pos = n
                    break
                if lt > pos:
                    self._text_parts.append((False, buf[pos:lt]))
                pos = lt
                self._mode = _MARKUP
            elif self._mode == _MARKUP:
                consumed = self._scan_markup(buf, pos, out)
                if consumed is None:
                    break
                pos = consumed
            elif self._mode == _COMMENT:
                end = buf.find("-->", pos)
                if end < 0:
                    pos = max(pos, n - 2)
                    break
                pos = end + 3
                self._mode = _TEXT
            elif self._mode == _CDATA_SECT:
                end = buf.find("]]>", pos)
                if end < 0:
                    if n - 2 > pos:
                        self._text_parts.append((True, buf[pos:n - 2]))
                    pos = max(pos, n - 2)
                    break
                self._text_parts.append((True, buf[pos:end]))
                pos = end + 3
                self._mode = _TEXT
            elif self._mode == _PI:
                end = buf.find("?>", pos)
                if end < 0:
                    pos = max(pos, n - 1)
                    break
                pos = end + 2
                self._mode = _TEXT
            elif self._mode == _DOCTYPE:
                end = buf.find(">", pos)
                if end < 0:
                    pos = n
                    break
                pos = end + 1
                self._mode = _TEXT
        self._offset += pos
        self._buf = buf[pos:]

    def _scan_markup(self, buf: str, pos: int,
                     out: List[Event]) -> Optional[int]:
        """Classify and consume one markup construct starting at '<'.

        Returns the new position, or None when more input is needed.
        """
        n = len(buf)
        if pos + 1 >= n:
            return None
        c = buf[pos + 1]
        if c == "!":
            if buf.startswith("<!--", pos):
                self._flush_text(out)
                self._mode = _COMMENT
                return pos + 4
            if buf.startswith("<![CDATA[", pos):
                self._mode = _CDATA_SECT
                return pos + 9
            if n - pos < 9:
                return None  # cannot classify "<!..." yet
            self._flush_text(out)
            self._mode = _DOCTYPE
            return pos + 2
        if c == "?":
            self._flush_text(out)
            self._mode = _PI
            return pos + 2
        gt = buf.find(">", pos)
        if gt < 0:
            return None
        raw = buf[pos + 1:gt]
        self._flush_text(out)
        if raw.startswith("/"):
            self._end_tag(raw[1:].strip(), out)
        elif raw.endswith("/"):
            self._start_tag(raw[:-1], out)
            self._pop_tag(out)
        else:
            self._start_tag(raw, out)
        self._mode = _TEXT
        return gt + 1

    # -- element handling ----------------------------------------------------

    def _start_tag(self, raw: str, out: List[Event]) -> None:
        tag, attrs = _split_tag(raw, self._offset)
        if not tag:
            raise XMLSyntaxError("empty tag name", self._offset)
        if self.attribute_handler is not None:
            for name, value in attrs:
                self.attribute_handler(tag, name, value)
        oid = self._take_oid()
        self._stack.append((tag, oid))
        out.append(start_element(self.stream_id, tag, oid=oid))

    def _end_tag(self, tag: str, out: List[Event]) -> None:
        if not self._stack:
            raise XMLSyntaxError(
                "closing tag </{}> with no open element".format(tag),
                self._offset)
        open_tag, oid = self._stack[-1]
        if open_tag != tag:
            raise XMLSyntaxError(
                "closing tag </{}> does not match <{}>".format(
                    tag, open_tag), self._offset)
        self._stack.pop()
        out.append(end_element(self.stream_id, tag, oid=oid))

    def _pop_tag(self, out: List[Event]) -> None:
        tag, oid = self._stack.pop()
        out.append(end_element(self.stream_id, tag, oid=oid))

    def _flush_text(self, out: List[Event]) -> None:
        if not self._text_parts:
            return
        parts = self._text_parts
        self._text_parts = []
        # CDATA-section segments are literal; only plain character data
        # gets entity decoding (runs are joined first so an entity split
        # across feed() chunks still decodes).
        text = "".join(
            seg if is_cdata else _decode_entities(seg, self._offset)
            for is_cdata, seg in _merge_runs(parts))
        if not self._stack:
            if text.strip():
                raise XMLSyntaxError(
                    "character data outside the root element", self._offset)
            return
        if not self.keep_whitespace and not text.strip():
            return
        out.append(cdata(self.stream_id, text, oid=self._take_oid()))

    def _take_oid(self) -> Optional[int]:
        if not self.emit_oids:
            return None
        oid = self._next_oid
        self._next_oid += 1
        return oid


def _merge_runs(parts):
    """Coalesce adjacent segments of the same kind (cdata vs plain)."""
    merged: List[Tuple[bool, str]] = []
    for is_cdata, seg in parts:
        if merged and merged[-1][0] == is_cdata:
            merged[-1] = (is_cdata, merged[-1][1] + seg)
        else:
            merged.append((is_cdata, seg))
    return merged


def _split_tag(raw: str, offset: int) -> Tuple[str, List[Tuple[str, str]]]:
    """Split '<tag a="1" b="2"' body into (tag, [(name, value), ...])."""
    raw = raw.strip()
    if not raw:
        return "", []
    i = 0
    n = len(raw)
    while i < n and not raw[i].isspace():
        i += 1
    tag = raw[:i]
    attrs: List[Tuple[str, str]] = []
    while i < n:
        while i < n and raw[i].isspace():
            i += 1
        if i >= n:
            break
        eq = raw.find("=", i)
        if eq < 0:
            raise XMLSyntaxError(
                "malformed attribute in <{}>".format(tag), offset)
        name = raw[i:eq].strip()
        j = eq + 1
        while j < n and raw[j].isspace():
            j += 1
        if j >= n or raw[j] not in "\"'":
            raise XMLSyntaxError(
                "unquoted attribute value in <{}>".format(tag), offset)
        quote = raw[j]
        end = raw.find(quote, j + 1)
        if end < 0:
            raise XMLSyntaxError(
                "unterminated attribute value in <{}>".format(tag), offset)
        attrs.append((name, _decode_entities(raw[j + 1:end], offset)))
        i = end + 1
    return tag, attrs


def _decode_entities(text: str, offset: int) -> str:
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        amp = text.find("&", i)
        if amp < 0:
            out.append(text[i:])
            break
        out.append(text[i:amp])
        semi = text.find(";", amp + 1)
        if semi < 0 or semi - amp > 10:
            raise XMLSyntaxError("unterminated entity reference", offset)
        name = text[amp + 1:semi]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(
                "unknown entity &{};".format(name), offset)
        i = semi + 1
    return "".join(out)


def reference_tokenize(text: str, stream_id: int = 0,
                       emit_oids: bool = False,
                       keep_whitespace: bool = False) -> List[Event]:
    """Tokenize a complete document with the reference scanner."""
    tok = ReferenceTokenizer(stream_id=stream_id, emit_oids=emit_oids,
                             keep_whitespace=keep_whitespace)
    return list(tok.tokenize(text))


def iter_reference_tokenize(chunks: Iterable[str], stream_id: int = 0,
                            emit_oids: bool = False,
                            keep_whitespace: bool = False) -> Iterator[Event]:
    """Tokenize chunked XML with the reference scanner."""
    tok = ReferenceTokenizer(stream_id=stream_id, emit_oids=emit_oids,
                             keep_whitespace=keep_whitespace)
    for chunk in chunks:
        yield from tok.feed(chunk)
    yield from tok.close()
